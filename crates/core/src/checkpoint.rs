//! Content-addressed, self-verifying cache of warm-start checkpoints.
//!
//! Every cell of a figure matrix begins with the same cold-start
//! transient for a given (machine, app, seed, scale) tuple: caches
//! filling, codecs training, cores marching to the first barrier. A
//! [`CheckpointCache`] simulates that prefix once, stores the
//! [`MachineSnapshot`] under a key derived from the *full* run
//! configuration, and fast-forwards every later run sharing the prefix
//! — repeated submissions of a figure, or a fig6 and a fig7 campaign
//! over the same specs, skip straight to the warm point.
//!
//! Robustness is the design driver, in the spirit of compressed caches
//! that carry integrity metadata so a decode failure falls back to the
//! uncompressed path instead of corrupting data:
//!
//! * **Keyed by content, not by name.** The key fingerprints the whole
//!   [`SimConfig`] (machine, interconnect, scheme, fault campaign,
//!   sanitizer, watchdog — everything that shapes the prefix) plus the
//!   app, seed and scale. Two runs get the same checkpoint only if
//!   their prefixes are provably the same simulation.
//! * **Verified at load.** [`CheckpointCache::store`] records the
//!   snapshot's [`MachineSnapshot::digest`]; [`CheckpointCache::load`]
//!   recomputes it. A mismatch — a torn, bit-rotted or deliberately
//!   corrupted checkpoint — quarantines the entry (removed, counted in
//!   [`CacheStats::quarantined`]) and returns
//!   [`CacheLoad::Quarantined`], so the cell transparently falls back
//!   to a fresh simulation rather than producing wrong numbers.
//! * **Bounded.** At most `capacity` checkpoints are held; beyond that
//!   the oldest stored entry is evicted. A cache can degrade a warm
//!   start into a fresh one, never grow without bound.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

use cmp_common::types::Cycle;

use crate::engine::MachineSnapshot;

/// Cache key: (configuration fingerprint, warm-point cycle). Built by
/// [`crate::supervisor::warm_key`].
pub type WarmKey = (String, Cycle);

/// Outcome of a cache lookup.
pub enum CacheLoad {
    /// A checkpoint whose digest verified; restore it and go.
    Hit(Box<MachineSnapshot>),
    /// Nothing cached under this key.
    Miss,
    /// A checkpoint was cached but failed digest verification: it has
    /// been removed and counted; the caller must simulate fresh.
    Quarantined,
}

/// Lifetime counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Checkpoints stored.
    pub stores: u64,
    /// Loads that verified and fast-forwarded a run.
    pub hits: u64,
    /// Loads that found nothing.
    pub misses: u64,
    /// Loads that found a corrupt checkpoint and removed it.
    pub quarantined: u64,
    /// Stores that pushed out the oldest entry.
    pub evicted: u64,
}

struct Entry {
    snap: MachineSnapshot,
    digest: u64,
}

struct Inner {
    map: HashMap<WarmKey, Entry>,
    /// Store order, oldest first (eviction order).
    order: VecDeque<WarmKey>,
    capacity: usize,
    stats: CacheStats,
}

/// A shared, thread-safe checkpoint cache. One per service (or matrix
/// driver); workers call [`CheckpointCache::load`] /
/// [`CheckpointCache::store`] concurrently.
pub struct CheckpointCache {
    inner: Mutex<Inner>,
}

impl CheckpointCache {
    /// A cache holding at most `capacity` checkpoints (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CheckpointCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
                stats: CacheStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Store `snap` under `key`, recording its digest for load-time
    /// verification. A key already present keeps its existing entry
    /// (the first simulation of a prefix wins; both are bit-identical
    /// by construction). Evicts the oldest entry beyond capacity.
    pub fn store(&self, key: WarmKey, snap: MachineSnapshot) {
        let digest = snap.digest();
        let mut inner = self.lock();
        if inner.map.contains_key(&key) {
            return;
        }
        inner.stats.stores += 1;
        inner.map.insert(key.clone(), Entry { snap, digest });
        inner.order.push_back(key);
        while inner.map.len() > inner.capacity {
            // order can hold keys already quarantined away; skip those.
            match inner.order.pop_front() {
                Some(old) => {
                    if inner.map.remove(&old).is_some() {
                        inner.stats.evicted += 1;
                    }
                }
                None => break,
            }
        }
    }

    /// Look up `key`, verifying the stored checkpoint's digest before
    /// handing it out.
    pub fn load(&self, key: &WarmKey) -> CacheLoad {
        let mut inner = self.lock();
        let Some(entry) = inner.map.get(key) else {
            inner.stats.misses += 1;
            return CacheLoad::Miss;
        };
        if entry.snap.digest() != entry.digest {
            inner.map.remove(key);
            inner.stats.quarantined += 1;
            return CacheLoad::Quarantined;
        }
        let snap = Box::new(entry.snap.clone());
        inner.stats.hits += 1;
        CacheLoad::Hit(snap)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Checkpoints currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no checkpoints are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deliberately corrupt the checkpoint stored under `key` (via
    /// [`MachineSnapshot::fault_corrupt`]), so the next load exercises
    /// the quarantine path. Returns whether an entry was there to
    /// corrupt. Test and campaign hook; never called on the clean path.
    #[doc(hidden)]
    pub fn fault_corrupt(&self, key: &WarmKey) -> bool {
        let mut inner = self.lock();
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.snap.fault_corrupt();
                true
            }
            None => false,
        }
    }
}
