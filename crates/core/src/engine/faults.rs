//! Fault-campaign hooks: deterministic corruption of live coherence
//! metadata so sanitizer sweeps and structured-error paths can be
//! exercised against real violations. Never touched on the clean path.

use cmp_common::types::{Addr, TileId};
use coherence::l1::L1State;
use coherence::l2::DirState;
use coherence::sanitizer::Invariant;

use super::Engine;

impl Engine {
    /// Deterministically corrupt live coherence metadata so a sanitizer
    /// sweep (or the structured-error path) has a real violation of the
    /// given class to catch. Returns the `(tile, line)` it corrupted, or
    /// `None` when the machine holds no suitable line yet — campaigns
    /// retry on a later iteration.
    pub(crate) fn fault_inject_violation(&mut self, class: Invariant) -> Option<(TileId, Addr)> {
        let tiles = self.cfg.cmp.tiles();
        // A line is a safe target only while its home transaction machinery
        // is idle — otherwise the sweep's in-flight exemption hides it.
        let candidate = |want_owned: bool| -> Option<(usize, Addr)> {
            for (t, tile) in self.tiles.iter().enumerate() {
                for (line, state) in tile.l1.resident_lines() {
                    if want_owned && state == L1State::Shared {
                        continue;
                    }
                    let home = coherence::l1::home_of(line, tiles);
                    if !self.l2s[home.index()].slice.line_in_flight(line) {
                        return Some((t, line));
                    }
                }
            }
            None
        };
        match class {
            Invariant::SingleOwner => {
                let (t, line) = candidate(true)?;
                let forged = (t + 1) % tiles;
                self.tiles[forged]
                    .l1
                    .fault_set_state(line, L1State::Exclusive);
                // forging is a no-op when the forged tile's set is full
                (self.tiles[forged].l1.state_of(line) == Some(L1State::Exclusive))
                    .then(|| (TileId::from(forged), line))
            }
            Invariant::SharerAgreement => {
                let (t, line) = candidate(false)?;
                let home = coherence::l1::home_of(line, tiles);
                self.l2s[home.index()]
                    .slice
                    .fault_set_dir(line, DirState::Invalid);
                Some((TileId::from(t), line))
            }
            Invariant::DirectoryInclusion => {
                let (t, line) = candidate(false)?;
                let home = coherence::l1::home_of(line, tiles);
                self.l2s[home.index()].slice.fault_evict_line(line);
                Some((TileId::from(t), line))
            }
            Invariant::MshrConsistency => {
                let (t, line) = candidate(false)?;
                // two MSHRs tracking the same line
                self.tiles[t].l1.fault_push_mshr(line, false);
                self.tiles[t].l1.fault_push_mshr(line, false);
                Some((TileId::from(t), line))
            }
        }
    }
}
