//! The simulation engine: per-tile components, trait seams and the
//! scheduler that clocks them.
//!
//! The engine decomposes the machine the way the hardware does:
//!
//! * [`tile::Tile`] — one node's private state: trace-driven core,
//!   L1 controller and the compressing network interface
//!   ([`tile::NetIface`]);
//! * [`tile::L2Bank`] — one slice of the shared NUCA L2 with its
//!   full-map directory, a sibling of the tile on the same switch;
//! * the global pieces — flit-level NoC, memory controller, barrier —
//!   owned directly by the [`Engine`];
//! * [`calendar::Calendar`] — the event calendar: delayed protocol
//!   sends plus the incremental core-readiness index;
//! * [`ports::TilePorts`] — the typed outbound ports a controller's
//!   side effects are routed through;
//! * [`clocked::Clocked`] — the seam every component answers the
//!   scheduler through (`next_event` / `is_quiescent`).
//!
//! Cross-cutting concerns live in submodules: [`error`] (structured
//! failures with machine dumps), [`stats`] (end-of-run accounting),
//! [`snapshot`] (whole-machine checkpoint/restore), [`faults`]
//! (campaign corruption hooks).
//!
//! The public façade is [`crate::sim::CmpSimulator`]; the engine is the
//! machinery behind it.

pub mod calendar;
pub mod clocked;
pub mod epoch;
pub mod error;
pub mod faults;
pub mod ports;
pub mod profile;
pub mod snapshot;
pub mod stats;
pub mod tile;
pub mod watchdog;

pub use calendar::Calendar;
pub use clocked::Clocked;
pub use epoch::lookahead_window;
pub use error::{OldestInFlight, SimError, StateDump, TileDump, TileStall};
pub use ports::TilePorts;
pub use profile::PhaseProfile;
pub use snapshot::{MachineSnapshot, RestoreError};
pub use stats::{ClassCount, SimResult};
pub use tile::{L2Bank, NetIface, Tile};
pub use watchdog::WatchdogConfig;

use watchdog::Watchdog;

use std::sync::atomic::{AtomicBool, Ordering};

use addr_compression::{CompressionEngine, CompressionScheme};
use cmp_common::config::CmpConfig;
use cmp_common::fault::{FaultAction, FaultConfig, FaultInjector, FaultPath, FaultStats};
use cmp_common::types::{Cycle, TileId};
use coherence::l1::{CoreAccess, L1Cache, L1Result};
use coherence::memctrl::{MemCtrl, MemRead};
use coherence::msg::{OutVec, PKind, ProtocolMsg};
use coherence::sanitizer::{Sanitizer, SanitizerConfig};
use coherence::ProtocolError;
use cpu_model::core::{Action, Core};
use cpu_model::sync::BarrierState;
use mesh_noc::message::{Delivered, Message};
use mesh_noc::Noc;
use workloads::generator::TraceGen;
use workloads::profile::AppProfile;

use crate::niface::{map_channel, InterconnectChoice, ResyncStats, ResyncTracker};

use calendar::DelayedEvent;
use epoch::{ParState, Shards, PAR_MIN_ITEMS};

/// Everything a run needs to know.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Machine description (Table 4 default).
    pub cmp: CmpConfig,
    /// Link organisation.
    pub interconnect: InterconnectChoice,
    /// Address-compression scheme.
    pub scheme: CompressionScheme,
    /// Watchdog: abort after this many cycles.
    pub max_cycles: Cycle,
    /// Passive coverage probes: extra schemes observing the same address
    /// streams without influencing the run (used by the Figure 2
    /// reproduction to measure all schemes in a single simulation).
    pub coverage_probes: Vec<CompressionScheme>,
    /// Fault-injection campaign ([`FaultConfig::none`] = off, the
    /// default; a disabled campaign leaves the run bit-identical).
    pub faults: FaultConfig,
    /// Periodic protocol sanitizer (`None` = off). Sweeps are read-only,
    /// so enabling it cannot change a run's outcome — only abort a run
    /// whose coherence state has gone inconsistent.
    pub sanitizer: Option<SanitizerConfig>,
    /// Forward-progress watchdog (`None` = off; on by default).
    /// Observation is read-only, so enabling it cannot change a healthy
    /// run's outcome — only abort a livelocked one with a structured
    /// [`SimError::NoForwardProgress`] instead of spinning to
    /// `max_cycles`.
    pub watchdog: Option<WatchdogConfig>,
    /// Worker threads for the [`epoch`] scheduler (`None` or `Some(1)` =
    /// the serial scheduler). Results are bit-identical for every value —
    /// only wall-clock time changes. Clamped to the tile count; a run
    /// with a fault campaign enabled always steps serially, because fault
    /// injection is one global serialized decision stream.
    /// [`SimConfig::new`] defaults it from the `TCMP_SIM_THREADS`
    /// environment variable (the CI hook that replays the determinism
    /// goldens under the parallel scheduler).
    pub sim_threads: Option<usize>,
}

impl SimConfig {
    /// A configuration over the default machine. The sanitizer defaults
    /// to off unless the `TCMP_SANITIZE` environment variable is set to
    /// a non-empty value other than `0` (the CI hook that runs the whole
    /// suite with sweeps enabled).
    pub fn new(interconnect: InterconnectChoice, scheme: CompressionScheme) -> Self {
        let sanitizer = sanitize_from_env();
        let sim_threads = sim_threads_from_env();
        SimConfig {
            cmp: CmpConfig::default(),
            interconnect,
            scheme,
            max_cycles: 2_000_000_000,
            coverage_probes: Vec::new(),
            faults: FaultConfig::none(),
            sanitizer,
            watchdog: Some(WatchdogConfig::default()),
            sim_threads,
        }
    }

    /// The paper's baseline: 75-byte B-Wire links, no compression.
    pub fn baseline() -> Self {
        Self::new(InterconnectChoice::Baseline, CompressionScheme::None)
    }
}

/// Parse a `TCMP_SIM_THREADS` value: a positive integer. Pure so the
/// accepted forms are testable; the error message is what the one-shot
/// stderr warning prints.
pub(crate) fn parse_sim_threads(v: &str) -> Result<Option<usize>, String> {
    let v = v.trim();
    if v.is_empty() {
        return Ok(None);
    }
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        Ok(_) => Err(format!(
            "TCMP_SIM_THREADS={v:?} is not a positive integer; accepted: an integer >= 1 \
             (1 = serial); ignoring it"
        )),
        Err(_) => Err(format!(
            "TCMP_SIM_THREADS={v:?} is not an integer; accepted: an integer >= 1 \
             (1 = serial); ignoring it"
        )),
    }
}

/// Parse a `TCMP_SANITIZE` value. Accepted forms: unset, empty or `0`
/// disable the sanitizer; `1` enables it. Anything else is malformed:
/// the caller warns once on stderr and, to stay on the safe side of the
/// historical behaviour (any non-`0` value enabled sweeps), still
/// enables the sanitizer.
pub(crate) fn parse_sanitize(v: &str) -> Result<bool, String> {
    match v.trim() {
        "" | "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!(
            "TCMP_SANITIZE={other:?} is not a recognised value; accepted: 0/unset/empty (off) \
             or 1 (on); treating it as 1"
        )),
    }
}

/// True when a delivered message of this kind is handled by an L1
/// controller (the remaining kinds go to an L2 slice). Mirrors the
/// dispatch in [`Engine::deliver`]; used only for profile attribution.
fn l1_bound(kind: &PKind) -> bool {
    matches!(
        kind,
        PKind::DataS
            | PKind::DataE
            | PKind::DataM
            | PKind::PartialReply { .. }
            | PKind::UpgradeAck
            | PKind::Inv
            | PKind::FwdGetS { .. }
            | PKind::FwdGetX { .. }
            | PKind::RecallData
    )
}

/// Emit `warning` to stderr once per process (keyed by `flag`), so a
/// matrix spawning hundreds of simulators does not repeat it per cell.
fn warn_env_once(flag: &'static AtomicBool, warning: &str) {
    if !flag.swap(true, Ordering::Relaxed) {
        eprintln!("warning: {warning}");
    }
}

static SIM_THREADS_ENV_WARNED: AtomicBool = AtomicBool::new(false);
static SANITIZE_ENV_WARNED: AtomicBool = AtomicBool::new(false);
static FAULT_SERIAL_WARNED: AtomicBool = AtomicBool::new(false);
static PROFILE_ENV_WARNED: AtomicBool = AtomicBool::new(false);

/// The `TCMP_PROFILE` gate. A malformed value warns once on stderr and
/// enables profiling (the conservative reading, matching the other
/// `TCMP_*` knobs).
fn profile_from_env() -> bool {
    let v = std::env::var("TCMP_PROFILE").unwrap_or_default();
    match profile::parse_profile(&v) {
        Ok(on) => on,
        Err(warning) => {
            warn_env_once(&PROFILE_ENV_WARNED, &warning);
            true
        }
    }
}

/// The `TCMP_SIM_THREADS` override, if set to a positive integer. Also
/// consulted by the matrix drivers so their worker-pool sizing accounts
/// for the scheduler threads each run will spawn. A malformed value is
/// ignored — loudly, with a one-shot stderr warning, instead of the
/// silent fallback it used to be.
pub(crate) fn sim_threads_from_env() -> Option<usize> {
    let v = std::env::var("TCMP_SIM_THREADS").ok()?;
    match parse_sim_threads(&v) {
        Ok(n) => n,
        Err(warning) => {
            warn_env_once(&SIM_THREADS_ENV_WARNED, &warning);
            None
        }
    }
}

/// The `TCMP_SANITIZE` gate. A malformed value warns once on stderr and
/// enables the sanitizer (the conservative reading of "the user set the
/// sanitize knob to something").
fn sanitize_from_env() -> Option<SanitizerConfig> {
    let v = std::env::var("TCMP_SANITIZE").unwrap_or_default();
    let on = match parse_sanitize(&v) {
        Ok(on) => on,
        Err(warning) => {
            warn_env_once(&SANITIZE_ENV_WARNED, &warning);
            true
        }
    };
    on.then(SanitizerConfig::default)
}

/// The simulation engine: tiles, L2 banks and the global components,
/// clocked by one scheduler.
pub struct Engine {
    pub(crate) cfg: SimConfig,
    pub(crate) app_name: String,
    /// One per mesh node: core + L1 + network interface.
    pub(crate) tiles: Vec<Tile>,
    /// One per mesh node: the co-located shared-L2 slice.
    pub(crate) l2s: Vec<L2Bank>,
    pub(crate) noc: Noc<ProtocolMsg>,
    pub(crate) mem: MemCtrl,
    pub(crate) barrier: BarrierState,
    /// Delayed protocol sends + the incremental core-readiness index.
    pub(crate) calendar: Calendar,
    pub(crate) now: Cycle,
    /// Cores that have not retired their whole trace yet.
    pub(crate) cores_unfinished: usize,
    /// Banks whose [`L2Bank::sync`]-cached busy flag is set.
    pub(crate) busy_l2_count: usize,
    // --- robustness layer (all `None` on the clean fast path) ---
    /// Seeded fault decision-maker; present only when the campaign is
    /// enabled, so the clean path pays a single branch per injection.
    pub(crate) injector: Option<FaultInjector>,
    /// Periodic MESI-invariant sweeper.
    pub(crate) sanitizer: Option<Sanitizer>,
    /// Next cycle at/after which a sweep runs.
    pub(crate) next_sweep: Cycle,
    /// Forward-progress monitor (read-only observer).
    pub(crate) watchdog: Option<Watchdog>,
    /// Scheduler iterations completed (the watchdog's clock: each
    /// iteration advances `now` by at least one cycle).
    pub(crate) iters: u64,
    /// Test/campaign hook: silently drop whole-line data replies at the
    /// sender NI, bypassing the fault injector's recovery accounting —
    /// the synthetic livelock reproducer for the watchdog tests.
    pub(crate) drop_data_replies: bool,
    // --- reusable scratch buffers (hot-loop allocation sinks) ---
    pub(crate) delivered_scratch: Vec<Delivered<ProtocolMsg>>,
    pub(crate) due_scratch: Vec<u32>,
    /// Epoch-scheduler state (pool, owner map, effect slots); `None` on
    /// the serial path. Host-side execution strategy only — deliberately
    /// outside [`MachineSnapshot`], so snapshots transplant across thread
    /// counts.
    pub(crate) par: Option<Box<ParState>>,
    /// Per-phase wall-clock attribution; `None` unless enabled via
    /// [`Engine::enable_profiling`] or `TCMP_PROFILE=1`. Host-side
    /// measurement only — outside [`MachineSnapshot`].
    pub(crate) profile: Option<Box<PhaseProfile>>,
}

impl Engine {
    /// Build an engine running `app` at `scale`, seeded with `seed`.
    pub fn new(cfg: SimConfig, app: &AppProfile, seed: u64, scale: f64) -> Self {
        cfg.cmp.validate().expect("valid machine config");
        cfg.interconnect
            .validate(&cfg.cmp)
            .expect("valid interconnect");
        let tiles = cfg.cmp.tiles();
        let tile_row = (0..tiles)
            .map(|t| {
                let core = Core::new(
                    Box::new(TraceGen::new(app, t, tiles, seed, scale)),
                    cfg.cmp.core_issue_width,
                );
                let mut l1 = L1Cache::new(
                    TileId::from(t),
                    cfg.cmp.l1.sets(),
                    cfg.cmp.l1.ways,
                    cfg.cmp.l1_mshrs,
                    tiles,
                );
                l1.set_expects_partial(cfg.interconnect.splits_replies());
                let ni = NetIface {
                    codec: CompressionEngine::new(cfg.scheme, tiles),
                    probes: cfg
                        .coverage_probes
                        .iter()
                        .map(|&scheme| CompressionEngine::new(scheme, tiles))
                        .collect(),
                    tracker: ResyncTracker::new(tiles),
                };
                Tile {
                    core,
                    l1,
                    ni,
                    parked: false,
                }
            })
            .collect();
        let l2s = (0..tiles)
            .map(|t| L2Bank {
                slice: coherence::l2::L2Slice::with_directory(
                    TileId::from(t),
                    cfg.cmp.l2_slice.sets(),
                    cfg.cmp.l2_slice.ways,
                    tiles,
                    cfg.cmp.directory,
                ),
                busy: false,
            })
            .collect();
        let noc = Noc::new(
            cfg.cmp.mesh,
            cfg.interconnect
                .noc_config(&cfg.cmp.network, cfg.cmp.clock_hz),
        );
        let mem = MemCtrl::new(cfg.cmp.mem_latency_cycles);
        let barrier = BarrierState::new(tiles);
        let injector = cfg
            .faults
            .enabled()
            .then(|| FaultInjector::new(cfg.faults.clone()));
        let sanitizer = cfg.sanitizer.map(Sanitizer::new);
        let next_sweep = cfg.sanitizer.map_or(Cycle::MAX, |s| s.period);
        let threads = cfg.sim_threads.unwrap_or(1).clamp(1, tiles);
        if threads > 1 && injector.is_some() {
            warn_env_once(
                &FAULT_SERIAL_WARNED,
                "fault campaign enabled: falling back to the serial scheduler \
                 (--sim-threads ignored) — fault injection is one global serialized \
                 decision stream, so parallel epochs would break seed-reproducibility",
            );
        }
        let par = (threads > 1 && injector.is_none())
            .then(|| Box::new(ParState::new(threads, tiles, noc.config())));
        Engine {
            app_name: app.name.to_string(),
            tiles: tile_row,
            l2s,
            noc,
            mem,
            barrier,
            calendar: Calendar::new(tiles),
            now: 0,
            cores_unfinished: tiles,
            busy_l2_count: 0,
            injector,
            sanitizer,
            next_sweep,
            watchdog: cfg.watchdog.map(Watchdog::new),
            iters: 0,
            drop_data_replies: false,
            delivered_scratch: Vec::new(),
            due_scratch: Vec::new(),
            par,
            profile: profile_from_env().then(Box::default),
            cfg,
        }
    }

    /// Turn on per-phase wall-clock attribution for the rest of the
    /// run (see [`profile::PhaseProfile`]). Idempotent; already-elapsed
    /// phases are simply not counted.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// The accumulated phase profile, if profiling is enabled.
    pub fn phase_profile(&self) -> Option<&PhaseProfile> {
        self.profile.as_deref()
    }

    /// Worker threads the scheduler actually runs with (1 = serial).
    pub fn sim_threads(&self) -> usize {
        self.par.as_ref().map_or(1, |p| p.pool.threads())
    }

    /// The parallel scheduler's conservative cross-tile lookahead in
    /// cycles (`None` when stepping serially): the bound from
    /// [`lookahead_window`] that licenses per-cycle epochs.
    pub fn epoch_lookahead(&self) -> Option<Cycle> {
        self.par.as_ref().map(|p| p.lookahead)
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Route a controller's side effects through `tile`'s outbound ports.
    fn process_outgoing(&mut self, tile: TileId, outs: OutVec) {
        TilePorts::new(tile, self.now, &mut self.calendar, &mut self.mem).route(outs);
    }

    /// Re-cache core `t`'s ready cycle after its state may have changed.
    fn refresh_core(&mut self, t: usize) {
        let r = self.tiles[t].core.ready_at().unwrap_or(Cycle::MAX);
        self.calendar.set_core_ready(t, r);
    }

    /// Re-cache L2 bank `d`'s busy flag after it handled work.
    fn sync_bank(&mut self, d: usize) {
        let delta = self.l2s[d].sync();
        self.busy_l2_count = (self.busy_l2_count as i64 + delta as i64) as usize;
    }

    /// Machine snapshot for a structured failure report.
    #[cold]
    #[inline(never)]
    fn dump(&self) -> StateDump {
        let tiles = (0..self.cfg.cmp.tiles())
            .map(|t| TileDump {
                tile: TileId::from(t),
                core: self.tiles[t].core.describe(),
                mshr_lines: self.tiles[t].l1.mshr_lines().collect(),
                l2_busy: self.l2s[t].slice.busy_lines().collect(),
                l2_fills: self.l2s[t].slice.fill_lines().collect(),
                l2_pending: self.l2s[t].slice.queued_requests(),
                ni_backlog: self.noc.tile_backlog(t),
            })
            .collect();
        StateDump {
            cycle: self.now,
            tiles,
            mem_reads: self
                .mem
                .outstanding_reads()
                .map(|r| (r.tile, r.line, r.ready_at))
                .collect(),
            delayed_events: self.calendar.delayed_len(),
            held_messages: self.noc.held_count(),
            live_messages: self.noc.live_messages(),
        }
    }

    /// Wrap a controller's rejection into the run-level error.
    #[cold]
    #[inline(never)]
    fn protocol_error(&self, error: ProtocolError) -> SimError {
        SimError::Protocol {
            cycle: self.now,
            error,
            dump: Box::new(self.dump()),
        }
    }

    /// Instructions retired across all cores so far.
    pub fn total_instructions(&self) -> u64 {
        self.tiles.iter().map(|t| t.core.stats().instructions).sum()
    }

    /// Build the structured livelock report the watchdog aborts with.
    #[cold]
    #[inline(never)]
    fn no_forward_progress(&self, stalled_for: Cycle) -> SimError {
        let tiles = (0..self.cfg.cmp.tiles())
            .map(|t| TileStall {
                tile: TileId::from(t),
                core: self.tiles[t].core.describe(),
                mshrs_in_use: self.tiles[t].l1.mshr_lines().count(),
                ni_backlog: self.noc.tile_backlog(t),
            })
            .collect();
        SimError::NoForwardProgress {
            cycle: self.now,
            stalled_for,
            tiles,
            calendar_head: self.calendar.next_delayed(),
            oldest_in_flight: self
                .noc
                .oldest_in_flight()
                .map(|(injected_at, src, dst, class)| OldestInFlight {
                    injected_at,
                    src,
                    dst,
                    class,
                }),
            dump: Box::new(self.dump()),
        }
    }

    /// A delayed event fires: local messages are delivered directly (they
    /// never touch the network); remote ones go through compression and
    /// channel mapping, then into the NoC.
    fn fire(&mut self, ev: DelayedEvent) -> Result<(), SimError> {
        if ev.src == ev.dst {
            return self.deliver(ev.src, ev.dst, ev.msg);
        }
        // Reply Partitioning: a data response is split at the sender's NI
        // into a critical partial reply (the requested word, on the fast
        // wires) plus the ordinary whole-line reply.
        if self.cfg.interconnect.splits_replies() {
            if let Some(of) = coherence::msg::PartialOf::of_kind(ev.msg.kind) {
                self.inject_one(
                    ProtocolMsg::new(PKind::PartialReply { of }, ev.msg.line),
                    ev,
                )?;
            }
        }
        // Livelock-reproducer hook: lose the whole-line reply after any
        // partial has gone out, so requesters run ahead on partials while
        // their MSHRs wait forever for fills that never come.
        if self.drop_data_replies
            && matches!(ev.msg.kind, PKind::DataS | PKind::DataE | PKind::DataM)
        {
            return Ok(());
        }
        self.inject_one(ev.msg, ev)
    }

    fn inject_one(&mut self, msg: ProtocolMsg, ev: DelayedEvent) -> Result<(), SimError> {
        let mut msg = msg;
        // The fault decision models an event in the NI input buffer: it
        // lands before the codec, so a drop never updates compression
        // state and a corrupted address is what gets compressed, routed
        // and homed.
        let action = match &mut self.injector {
            Some(inj) => inj.decide(self.now),
            None => FaultAction::None,
        };
        if let FaultAction::Corrupt(mask) = action {
            msg.line ^= mask;
        }
        if action == FaultAction::Drop {
            return Ok(());
        }
        let class = msg.class();
        let faults_live = self.injector.is_some();
        let s = ev.src.index();
        let wire_bytes = self.tiles[s]
            .ni
            .wire_size(self.now, ev.dst, class, msg.line, faults_live);
        if action == FaultAction::Desync {
            // Receiver-mirror corruption: this message still rides the
            // (now stale) codec; the *next* compressible send to the pair
            // detects the divergence via its tag.
            self.tiles[s].ni.codec.fault_desync(ev.dst, class);
        }
        let channel = map_channel(self.cfg.interconnect, class, wire_bytes);
        let message = Message {
            src: ev.src,
            dst: ev.dst,
            class,
            wire_bytes,
            channel,
            payload: msg,
        };
        let injected = match action {
            FaultAction::Duplicate => self
                .noc
                .inject(self.now, message.clone())
                .and_then(|()| self.noc.inject(self.now, message)),
            FaultAction::Delay(extra) => self.noc.inject_held(self.now + extra, message),
            _ => self.noc.inject(self.now, message),
        };
        if let Err(e) = injected {
            return Err(self.protocol_error(ProtocolError::internal(
                ev.src,
                msg.line,
                e.to_string(),
            )));
        }
        Ok(())
    }

    /// Consult the fault injector for one completed off-chip read — the
    /// memory-controller response path. Returns the (possibly
    /// address-corrupted) reply plus how many times to deliver it, or
    /// `None` when the reply was lost or re-queued with extra delay. A
    /// dropped or corrupted fill wedges or confuses the waiting home
    /// slice, which the watchdog/protocol layer must then report
    /// structurally; a duplicated fill arrives at a slice that is no
    /// longer expecting it — the same obligation.
    fn fault_mem_reply(&mut self, mut r: MemRead) -> Option<(MemRead, u32)> {
        let action = match &mut self.injector {
            Some(inj) => inj.decide_on(FaultPath::MemReply, self.now),
            None => return Some((r, 1)),
        };
        match action {
            FaultAction::None | FaultAction::Desync => Some((r, 1)),
            FaultAction::Drop => None,
            FaultAction::Duplicate => Some((r, 2)),
            FaultAction::Delay(extra) => {
                // extra >= 1, so the re-queued reply cannot come ready
                // again within this same phase-1 drain.
                r.ready_at = self.now + extra;
                self.mem.requeue_delayed(r);
                None
            }
            FaultAction::Corrupt(mask) => {
                r.line ^= mask;
                Some((r, 1))
            }
        }
    }

    fn deliver(&mut self, src: TileId, dst: TileId, msg: ProtocolMsg) -> Result<(), SimError> {
        let d = dst.index();
        match msg.kind {
            PKind::GetS | PKind::GetX | PKind::Upgrade => {
                let outs = self.l2s[d]
                    .slice
                    .handle_request(src, msg.kind, msg.line)
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(dst, outs);
                let pumped = self.l2s[d]
                    .slice
                    .pump()
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(dst, pumped);
                self.sync_bank(d);
            }
            PKind::InvAck
            | PKind::FwdFailed
            | PKind::FwdDone
            | PKind::RevisionClean
            | PKind::RevisionDirty
            | PKind::RecallAckData
            | PKind::RecallAckClean => {
                let outs = self.l2s[d]
                    .slice
                    .handle_reply(src, msg.kind, msg.line)
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(dst, outs);
                let pumped = self.l2s[d]
                    .slice
                    .pump()
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(dst, pumped);
                self.sync_bank(d);
            }
            PKind::WbData | PKind::WbHint => {
                let outs = self.l2s[d]
                    .slice
                    .handle_writeback(src, msg.kind, msg.line)
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(dst, outs);
                let pumped = self.l2s[d]
                    .slice
                    .pump()
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(dst, pumped);
                self.sync_bank(d);
            }
            PKind::DataS
            | PKind::DataE
            | PKind::DataM
            | PKind::PartialReply { .. }
            | PKind::UpgradeAck
            | PKind::Inv
            | PKind::FwdGetS { .. }
            | PKind::FwdGetX { .. }
            | PKind::RecallData => {
                let (outs, done) = self.tiles[d]
                    .l1
                    .handle(msg)
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(dst, outs);
                if done.is_some() {
                    self.tiles[d].core.mem_complete(self.now);
                    self.refresh_core(d);
                }
            }
        }
        Ok(())
    }

    /// Close a phase-profile timer into the bucket `f` selects (no-op
    /// unless profiling is enabled).
    #[inline]
    fn prof(&mut self, m: profile::Mark, f: impl FnOnce(&mut PhaseProfile) -> &mut u64) {
        if let Some(p) = self.profile.as_mut() {
            m.stop(f(p));
        }
    }

    fn step_core(&mut self, t: usize) {
        let was_done = self.tiles[t].core.is_done();
        self.step_core_inner(t);
        if !was_done && self.tiles[t].core.is_done() {
            self.cores_unfinished -= 1;
        }
    }

    fn step_core_inner(&mut self, t: usize) {
        loop {
            match self.tiles[t].core.next_action(self.now) {
                Action::Access { line, write } => {
                    let access = if write {
                        CoreAccess::Write
                    } else {
                        CoreAccess::Read
                    };
                    match self.tiles[t].l1.core_access(line, access) {
                        L1Result::Hit => {
                            self.tiles[t].core.mem_hit(self.now);
                            // falls through: next_action will report Idle
                        }
                        L1Result::Miss { out } => {
                            self.tiles[t].core.mem_miss_started(self.now);
                            self.process_outgoing(TileId::from(t), out);
                            return;
                        }
                        L1Result::Blocked => {
                            self.tiles[t].core.mem_retry(self.now);
                            return;
                        }
                    }
                }
                Action::AtBarrier(id) => {
                    self.tiles[t].parked = true;
                    if self.barrier.arrive(t, id) {
                        for p in 0..self.tiles.len() {
                            if self.tiles[p].parked {
                                self.tiles[p].core.barrier_release(self.now);
                                self.tiles[p].parked = false;
                                self.refresh_core(p);
                            }
                        }
                    }
                    return;
                }
                Action::Idle { .. } | Action::Done => return,
            }
        }
    }

    /// O(1): every term is a live counter kept in sync as state changes
    /// (the scan-per-iteration predecessor walked all cores and slices).
    fn all_done(&self) -> bool {
        self.cores_unfinished == 0
            && self.noc.is_quiescent()
            && self.calendar.delayed_len() == 0
            && self.mem.is_quiescent()
            && self.busy_l2_count == 0
    }

    fn next_interesting(&mut self) -> Option<Cycle> {
        let mut next = Cycle::MAX;
        if let Some(r) = self.calendar.earliest_ready_core() {
            next = next.min(r);
        }
        if let Some(n) = Clocked::next_event(&self.noc, self.now) {
            next = next.min(n);
        }
        if let Some(m) = Clocked::next_event(&self.mem, self.now) {
            next = next.min(m);
        }
        if let Some(d) = self.calendar.next_delayed() {
            next = next.min(d);
        }
        (next != Cycle::MAX).then_some(next.max(self.now + 1))
    }

    fn diagnostics(&self) -> String {
        let running = self.tiles.iter().filter(|t| !t.core.is_done()).count();
        let parked = self.tiles.iter().filter(|t| t.parked).count();
        let busy_l2 = self.l2s.iter().filter(|b| !b.slice.is_quiescent()).count();
        format!(
            "{} cores unfinished ({} parked at barrier {}), noc idle={}, \
             {} delayed events, {} mem reads outstanding, {} busy L2 slices",
            running,
            parked,
            self.barrier.epoch(),
            self.noc.is_idle(),
            self.calendar.delayed_len(),
            self.mem.outstanding(),
            busy_l2
        )
    }

    /// One scheduler iteration: drain everything due at `self.now`, then
    /// jump the clock to the next interesting cycle. Returns `Ok(false)`
    /// once the workload has fully drained.
    pub fn step_iteration(&mut self) -> Result<bool, SimError> {
        if self.all_done() {
            return Ok(false);
        }
        if self.now >= self.cfg.max_cycles {
            return Err(SimError::Watchdog { cycle: self.now });
        }
        self.iters += 1;
        if let Some(p) = self.profile.as_mut() {
            p.iterations += 1;
        }
        if self
            .watchdog
            .as_ref()
            .is_some_and(|w| w.check_due(self.iters))
        {
            let instructions = self.total_instructions();
            // Summed across the per-partition (per-sub-network) delivery
            // counters — cheap, and thread-count-invariant by fixed-order
            // merge.
            let delivered = self.noc.delivered_total();
            let iters = self.iters;
            let now = self.now;
            let wd = self.watchdog.as_mut().expect("checked above");
            if let Some(stalled_for) = wd.observe(iters, now, instructions, delivered) {
                return Err(self.no_forward_progress(stalled_for));
            }
        }
        // 0. sanitizer sweep (read-only, between-iteration state is a
        // consistent boundary for its invariants)
        if let Some(san) = self
            .sanitizer
            .as_mut()
            .filter(|_| self.now >= self.next_sweep)
        {
            let l1s: Vec<&L1Cache> = self.tiles.iter().map(|t| &t.l1).collect();
            let l2s: Vec<&coherence::l2::L2Slice> = self.l2s.iter().map(|b| &b.slice).collect();
            let violations = san.sweep(self.now, &l1s, &l2s);
            self.next_sweep = self.now + san.period();
            if !violations.is_empty() {
                return Err(SimError::Sanitizer {
                    cycle: self.now,
                    violations,
                    dump: Box::new(self.dump()),
                });
            }
        }
        // 1.–4. the per-cycle phases: memory completions, delayed sends,
        // network, cores. The serial and epoch-parallel schedulers are
        // interchangeable here — the parallel one partitions each phase
        // by owner tile and merges side effects back in the serial order,
        // so every observable (including the determinism goldens) is
        // bit-identical for any thread count.
        if self.par.is_some() {
            self.step_phases_par()?;
        } else {
            self.step_phases_serial()?;
        }
        // 5. advance
        let m = profile::Mark::start(self.profile.is_some());
        let next = self.next_interesting();
        self.prof(m, |p| &mut p.advance_ns);
        match next {
            Some(next) => {
                self.now = next;
                Ok(true)
            }
            None => {
                if self.all_done() {
                    Ok(false)
                } else {
                    Err(SimError::Deadlock {
                        cycle: self.now,
                        diagnostics: self.diagnostics(),
                        dump: Box::new(self.dump()),
                    })
                }
            }
        }
    }

    /// Phases 1–4 of one iteration, serial: the original single-threaded
    /// drain. Also the only path a fault campaign runs on (injection is
    /// one global serialized decision stream).
    fn step_phases_serial(&mut self) -> Result<(), SimError> {
        let profiling = self.profile.is_some();
        // 1. memory completions (each reply consults the fault injector
        //    when a campaign is live — the off-chip reply path)
        let m = profile::Mark::start(profiling);
        while let Some(r) = self.mem.pop_next_ready(self.now) {
            let (reply, deliveries) = match self.fault_mem_reply(r) {
                Some(v) => v,
                None => continue, // dropped or re-queued with extra delay
            };
            for _ in 0..deliveries {
                let outs = self.l2s[reply.tile.index()]
                    .slice
                    .mem_fill_done(reply.line)
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(reply.tile, outs);
                let pumped = self.l2s[reply.tile.index()]
                    .slice
                    .pump()
                    .map_err(|e| self.protocol_error(e))?;
                self.process_outgoing(reply.tile, pumped);
                self.sync_bank(reply.tile.index());
            }
        }
        self.prof(m, |p| &mut p.mem_fills_ns);
        // 2. delayed sends due now
        let m = profile::Mark::start(profiling);
        while let Some(ev) = self.calendar.pop_delayed_due(self.now) {
            self.fire(ev)?;
        }
        self.prof(m, |p| &mut p.calendar_ns);
        // 3. network
        let mut delivered = std::mem::take(&mut self.delivered_scratch);
        delivered.clear();
        let m = profile::Mark::start(profiling);
        self.noc.tick_into(self.now, &mut delivered);
        self.prof(m, |p| &mut p.noc_tick_ns);
        let mut failed = None;
        for d in delivered.drain(..) {
            if failed.is_some() {
                continue; // drain the rest; the run is already aborting
            }
            let to_l1 = profiling && l1_bound(&d.message.payload.kind);
            let m = profile::Mark::start(profiling);
            if let Err(e) = self.deliver(d.message.src, d.message.dst, d.message.payload) {
                failed = Some(e);
            }
            self.prof(m, |p| {
                if to_l1 {
                    &mut p.l1_deliver_ns
                } else {
                    &mut p.l2_deliver_ns
                }
            });
        }
        self.delivered_scratch = delivered;
        if let Some(e) = failed {
            return Err(e);
        }
        // 4. cores due now, in ascending tile order (reproduces the
        // original full scan exactly, keeping delayed-event sequencing —
        // and therefore the determinism goldens — bit-identical).
        let mut due = std::mem::take(&mut self.due_scratch);
        self.calendar.drain_cores_due(self.now, &mut due);
        let m = profile::Mark::start(profiling);
        for &t in &due {
            self.step_core(t as usize);
            self.refresh_core(t as usize);
        }
        self.prof(m, |p| &mut p.cores_ns);
        self.due_scratch = due;
        Ok(())
    }

    /// Phases 1–4 of one iteration on the [`epoch`] scheduler: each
    /// phase's items are collected on worker threads (partitioned by
    /// owner tile) and their side effects merged serially in the exact
    /// order `step_phases_serial` would have produced them.
    fn step_phases_par(&mut self) -> Result<(), SimError> {
        let mut par = self.par.take().expect("parallel scheduler state");
        // Coarser attribution than the serial path: each parallel phase
        // lands whole in one bucket (the network phase includes its
        // serial-order delivery merge, so L1/L2 handler time shows up
        // under `noc_tick` here).
        let profiling = self.profile.is_some();
        let m = profile::Mark::start(profiling);
        let mut result = self.par_phase_fills(&mut par);
        self.prof(m, |p| &mut p.mem_fills_ns);
        if result.is_ok() {
            let m = profile::Mark::start(profiling);
            result = self.par_phase_events(&mut par);
            self.prof(m, |p| &mut p.calendar_ns);
        }
        if result.is_ok() {
            let m = profile::Mark::start(profiling);
            result = self.par_phase_network(&mut par);
            self.prof(m, |p| &mut p.noc_tick_ns);
        }
        if result.is_ok() {
            let m = profile::Mark::start(profiling);
            result = self.par_phase_cores(&mut par);
            self.prof(m, |p| &mut p.cores_ns);
        }
        self.par = Some(par);
        result
    }

    /// Phase 1, parallel: memory completions, collected per owner bank,
    /// merged in pop order.
    fn par_phase_fills(&mut self, par: &mut ParState) -> Result<(), SimError> {
        par.fills.clear();
        while let Some(r) = self.mem.pop_next_ready(self.now) {
            par.fills.push(r);
        }
        let n = par.fills.len();
        if n == 0 {
            return Ok(());
        }
        par.ensure_slots(n);
        {
            let ParState {
                ref pool,
                ref owner,
                ref fills,
                ref mut slots,
                ..
            } = *par;
            if n >= PAR_MIN_ITEMS {
                let banks = Shards::new(&mut self.l2s[..]);
                let slots = Shards::new(&mut slots[..n]);
                pool.run(|w| {
                    for (i, r) in fills.iter().enumerate() {
                        if owner[r.tile.index()] as usize != w {
                            continue;
                        }
                        // SAFETY: the owner map assigns each bank — and
                        // therefore each item index — to one worker.
                        let bank = unsafe { banks.get_mut(r.tile.index()) };
                        let fx = unsafe { slots.get_mut(i) };
                        if let Err(e) = epoch::mem_fill_into(bank, r.line, fx) {
                            fx.error = Some(e);
                        }
                    }
                });
            } else {
                for (r, fx) in fills.iter().zip(slots.iter_mut()) {
                    if let Err(e) = epoch::mem_fill_into(&mut self.l2s[r.tile.index()], r.line, fx)
                    {
                        fx.error = Some(e);
                    }
                }
            }
        }
        for i in 0..n {
            let r = par.fills[i];
            let fx = &mut par.slots[i];
            if let Some(e) = fx.error.take() {
                return Err(self.protocol_error(e));
            }
            TilePorts::new(r.tile, self.now, &mut self.calendar, &mut self.mem)
                .route_slice(&fx.outs);
            self.sync_bank(r.tile.index());
        }
        Ok(())
    }

    /// Phase 2, parallel: delayed sends due now, collected per source
    /// tile (a local event delivers into its own tile/bank; a remote one
    /// runs the sender NI), merged in `(cycle, seq)` order with the
    /// cycle's outbound batch injected in merge order. Local deliveries
    /// can schedule follow-up sends due this same cycle, so the drain
    /// loops; every later round carries strictly higher sequence numbers,
    /// so round concatenation reproduces the serial firing order exactly.
    fn par_phase_events(&mut self, par: &mut ParState) -> Result<(), SimError> {
        loop {
            par.events.clear();
            while let Some(ev) = self.calendar.pop_delayed_due(self.now) {
                par.events.push(ev);
            }
            let n = par.events.len();
            if n == 0 {
                return Ok(());
            }
            par.ensure_slots(n);
            let interconnect = self.cfg.interconnect;
            let drop_replies = self.drop_data_replies;
            let now = self.now;
            {
                let ParState {
                    ref pool,
                    ref owner,
                    ref events,
                    ref mut slots,
                    ..
                } = *par;
                if n >= PAR_MIN_ITEMS {
                    let tiles = Shards::new(&mut self.tiles[..]);
                    let banks = Shards::new(&mut self.l2s[..]);
                    let slots = Shards::new(&mut slots[..n]);
                    pool.run(|w| {
                        for (i, ev) in events.iter().enumerate() {
                            let s = ev.src.index();
                            if owner[s] as usize != w {
                                continue;
                            }
                            // SAFETY: an event touches only its source
                            // tile's state (local events have dst == src),
                            // and each tile is owned by one worker.
                            let tile = unsafe { tiles.get_mut(s) };
                            let bank = unsafe { banks.get_mut(s) };
                            let fx = unsafe { slots.get_mut(i) };
                            if let Err(e) = epoch::fire_into(
                                tile,
                                bank,
                                interconnect,
                                drop_replies,
                                now,
                                ev,
                                fx,
                            ) {
                                fx.error = Some(e);
                            }
                        }
                    });
                } else {
                    for (ev, fx) in events.iter().zip(slots.iter_mut()) {
                        let s = ev.src.index();
                        if let Err(e) = epoch::fire_into(
                            &mut self.tiles[s],
                            &mut self.l2s[s],
                            interconnect,
                            drop_replies,
                            now,
                            ev,
                            fx,
                        ) {
                            fx.error = Some(e);
                        }
                    }
                }
            }
            {
                let ParState {
                    ref events,
                    ref mut slots,
                    ref mut outbound,
                    ..
                } = *par;
                outbound.clear();
                for i in 0..n {
                    let ev = events[i];
                    let fx = &mut slots[i];
                    if let Some(e) = fx.error.take() {
                        return Err(self.protocol_error(e));
                    }
                    if ev.src == ev.dst {
                        TilePorts::new(ev.dst, self.now, &mut self.calendar, &mut self.mem)
                            .route_slice(&fx.outs);
                        if fx.bank_touched {
                            self.sync_bank(ev.dst.index());
                        }
                        if fx.refresh {
                            self.refresh_core(ev.dst.index());
                        }
                    }
                    // moves the batch, leaving fx.msgs empty with its
                    // capacity intact for the next iteration
                    outbound.append(&mut fx.msgs);
                }
            }
            if let Err((i, e)) = self.noc.inject_batch(self.now, &mut par.outbound) {
                let m = &par.outbound[i];
                return Err(self.protocol_error(ProtocolError::internal(
                    m.src,
                    m.payload.line,
                    e.to_string(),
                )));
            }
        }
    }

    /// Phase 3, parallel: tick the sub-networks (each advances on its own
    /// stats/energy accumulators) and deliver arrivals per destination
    /// tile, drained and merged in sub-network index order — exactly
    /// [`Noc::tick_into`]'s order.
    fn par_phase_network(&mut self, par: &mut ParState) -> Result<(), SimError> {
        // Held-release mutates shared injection state: stays serial.
        self.noc.release_held(self.now);
        let now = self.now;
        {
            let (subnets, rem) = self.noc.subnets_mut();
            let active = subnets.iter().filter(|s| s.has_work(now)).count();
            if active >= 2 {
                let len = subnets.len();
                let threads = par.pool.threads();
                let sh = Shards::new(subnets);
                par.pool.run(|w| {
                    for i in 0..len {
                        if i % threads != w {
                            continue;
                        }
                        // SAFETY: sub-network i is owned by one worker.
                        let s = unsafe { sh.get_mut(i) };
                        if s.has_work(now) {
                            s.tick(now, rem);
                        }
                    }
                });
            } else {
                for s in subnets.iter_mut() {
                    if s.has_work(now) {
                        s.tick(now, rem);
                    }
                }
            }
        }
        par.arrivals.clear();
        {
            let (subnets, _) = self.noc.subnets_mut();
            for s in subnets.iter_mut() {
                s.drain_delivered_into(&mut par.arrivals);
            }
        }
        let n = par.arrivals.len();
        if n == 0 {
            return Ok(());
        }
        par.ensure_slots(n);
        {
            let ParState {
                ref pool,
                ref owner,
                ref arrivals,
                ref mut slots,
                ..
            } = *par;
            if n >= PAR_MIN_ITEMS {
                let tiles = Shards::new(&mut self.tiles[..]);
                let banks = Shards::new(&mut self.l2s[..]);
                let slots = Shards::new(&mut slots[..n]);
                pool.run(|w| {
                    for (i, d) in arrivals.iter().enumerate() {
                        let t = d.message.dst.index();
                        if owner[t] as usize != w {
                            continue;
                        }
                        // SAFETY: a delivery touches only the destination
                        // tile/bank, owned by one worker.
                        let tile = unsafe { tiles.get_mut(t) };
                        let bank = unsafe { banks.get_mut(t) };
                        let fx = unsafe { slots.get_mut(i) };
                        if let Err(e) = epoch::deliver_into(
                            tile,
                            bank,
                            now,
                            d.message.src,
                            d.message.payload,
                            fx,
                        ) {
                            fx.error = Some(e);
                        }
                    }
                });
            } else {
                for (d, fx) in arrivals.iter().zip(slots.iter_mut()) {
                    let t = d.message.dst.index();
                    if let Err(e) = epoch::deliver_into(
                        &mut self.tiles[t],
                        &mut self.l2s[t],
                        now,
                        d.message.src,
                        d.message.payload,
                        fx,
                    ) {
                        fx.error = Some(e);
                    }
                }
            }
        }
        for i in 0..n {
            let dst = par.arrivals[i].message.dst;
            let fx = &mut par.slots[i];
            if let Some(e) = fx.error.take() {
                return Err(self.protocol_error(e));
            }
            TilePorts::new(dst, self.now, &mut self.calendar, &mut self.mem).route_slice(&fx.outs);
            if fx.bank_touched {
                self.sync_bank(dst.index());
            }
            if fx.refresh {
                self.refresh_core(dst.index());
            }
        }
        Ok(())
    }

    /// Phase 4, parallel: step the cores due now, collected per tile and
    /// merged in ascending tile order. Barrier arrivals are replayed at
    /// the merge, so the release sweep happens exactly where the serial
    /// scheduler put it — at the last arriving tile.
    fn par_phase_cores(&mut self, par: &mut ParState) -> Result<(), SimError> {
        self.calendar.drain_cores_due(self.now, &mut par.due);
        let n = par.due.len();
        if n == 0 {
            return Ok(());
        }
        par.ensure_slots(n);
        let now = self.now;
        {
            let ParState {
                ref pool,
                ref owner,
                ref due,
                ref mut slots,
                ..
            } = *par;
            if n >= PAR_MIN_ITEMS {
                let tiles = Shards::new(&mut self.tiles[..]);
                let slots = Shards::new(&mut slots[..n]);
                pool.run(|w| {
                    for (i, &t) in due.iter().enumerate() {
                        let t = t as usize;
                        if owner[t] as usize != w {
                            continue;
                        }
                        // SAFETY: one worker per tile.
                        let tile = unsafe { tiles.get_mut(t) };
                        let fx = unsafe { slots.get_mut(i) };
                        epoch::step_core_into(tile, now, fx);
                    }
                });
            } else {
                for (&t, fx) in due.iter().zip(slots.iter_mut()) {
                    epoch::step_core_into(&mut self.tiles[t as usize], now, fx);
                }
            }
        }
        for i in 0..n {
            let t = par.due[i] as usize;
            let fx = &mut par.slots[i];
            TilePorts::new(TileId::from(t), self.now, &mut self.calendar, &mut self.mem)
                .route_slice(&fx.outs);
            if let Some(id) = fx.barrier.take() {
                if self.barrier.arrive(t, id) {
                    for p in 0..self.tiles.len() {
                        if self.tiles[p].parked {
                            self.tiles[p].core.barrier_release(self.now);
                            self.tiles[p].parked = false;
                            self.refresh_core(p);
                        }
                    }
                }
            }
            if fx.finished {
                self.cores_unfinished -= 1;
            }
            self.refresh_core(t);
        }
        Ok(())
    }

    /// Faults injected so far (`None` without a campaign).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// Arm (or re-arm) the periodic protocol sanitizer mid-run, with the
    /// first sweep due immediately. Restoring a [`MachineSnapshot`]
    /// overwrites the sanitizer with the snapshot's (usually absent)
    /// state, so forensic replay — rewind a watchdog-aborted cell to its
    /// last checkpoint and re-step with sweeps on — calls this *after*
    /// the restore.
    pub fn arm_sanitizer(&mut self, cfg: SanitizerConfig) {
        self.sanitizer = Some(Sanitizer::new(cfg));
        self.next_sweep = self.now;
    }

    /// Enable/disable the synthetic livelock: whole-line data replies are
    /// silently lost at the sender NI (partial replies still flow), so
    /// MSHRs pin and cores spin on blocked accesses. Campaign/test hook;
    /// never touched on the clean path.
    pub fn fault_drop_data_replies(&mut self, enable: bool) {
        self.drop_data_replies = enable;
    }

    /// Codec-resynchronisation accounting summed across all tiles.
    pub fn resync_stats(&self) -> ResyncStats {
        let mut total = ResyncStats::default();
        for tile in &self.tiles {
            let s = tile.ni.tracker.stats();
            total.desyncs_detected += s.desyncs_detected;
            total.resyncs_completed += s.resyncs_completed;
            total.fallback_msgs += s.fallback_msgs;
        }
        total
    }

    /// Flits sent per outgoing link of one channel kind (utilisation
    /// heatmaps; see the `linkstat` diagnostic binary).
    pub fn link_flit_counts(
        &self,
        kind: mesh_noc::config::ChannelKind,
    ) -> Vec<(usize, cmp_common::geometry::Direction, u64)> {
        self.noc.link_flit_counts(kind)
    }

    /// Consistency check used by tests: the L1's home mapping must agree
    /// with the machine description's.
    pub fn homes_agree(cfg: &CmpConfig) -> bool {
        (0..4096u64)
            .all(|line| coherence::l1::home_of(line, cfg.tiles()) == cfg.home_tile(line << 6))
    }
}

#[cfg(test)]
mod tests;
