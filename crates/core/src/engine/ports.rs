//! Typed ports: how a tile's controllers hand traffic to the rest of the
//! machine.
//!
//! The coherence controllers are pure state machines returning
//! [`OutVec`]s of side effects; a [`TilePorts`] routes those effects to
//! their destinations — protocol sends onto the event calendar (charged
//! their local array-access latency), memory reads/writes straight to
//! the controller. The port is a zero-cost borrow over the engine's
//! calendar and memory controller, so routing compiles down to exactly
//! the match the monolithic simulator used to inline.

use cmp_common::types::{Addr, Cycle, TileId};
use coherence::memctrl::MemCtrl;
use coherence::msg::{OutVec, Outgoing, ProtocolMsg};

use super::calendar::Calendar;

/// The outbound ports of one tile (or L2 bank) at one instant.
pub struct TilePorts<'a> {
    src: TileId,
    now: Cycle,
    calendar: &'a mut Calendar,
    mem: &'a mut MemCtrl,
}

impl<'a> TilePorts<'a> {
    /// Ports for `src`, routing into `calendar` and `mem` at cycle `now`.
    pub(crate) fn new(
        src: TileId,
        now: Cycle,
        calendar: &'a mut Calendar,
        mem: &'a mut MemCtrl,
    ) -> Self {
        TilePorts {
            src,
            now,
            calendar,
            mem,
        }
    }

    /// Send a protocol message, charged `delay` cycles of local latency
    /// before it is injected (remote) or delivered (local).
    pub fn send(&mut self, dst: TileId, msg: ProtocolMsg, delay: u64) {
        self.calendar.schedule(self.now, self.src, dst, msg, delay);
    }

    /// Start an off-chip read on behalf of this tile's L2 bank.
    pub fn mem_read(&mut self, line: Addr) {
        self.mem.read(self.now, self.src, line);
    }

    /// Record an off-chip write (latency-irrelevant for the protocol).
    pub fn mem_write(&mut self, line: Addr) {
        self.mem.write(line);
    }

    /// Route a controller's whole side-effect vector.
    pub fn route(&mut self, outs: OutVec) {
        self.route_slice(&outs);
    }

    /// Route a slice of side effects — the epoch scheduler's merge path,
    /// which replays effects collected on worker threads in deterministic
    /// order (`Outgoing` is `Copy`, so the slice is not consumed).
    pub fn route_slice(&mut self, outs: &[Outgoing]) {
        for &o in outs {
            match o {
                Outgoing::Send { dst, msg, delay } => self.send(dst, msg, delay),
                Outgoing::MemRead { line } => self.mem_read(line),
                Outgoing::MemWrite { line } => self.mem_write(line),
            }
        }
    }
}
