//! Structured failure reporting: every abnormal end of a run carries a
//! machine snapshot instead of a panic.

use cmp_common::types::{Addr, Cycle, MessageClass, TileId};
use coherence::sanitizer::Violation;
use coherence::ProtocolError;

/// One tile's stall picture attached to a
/// [`SimError::NoForwardProgress`] report.
#[derive(Clone, Debug)]
pub struct TileStall {
    /// The tile.
    pub tile: TileId,
    /// What the core is doing (`Core::describe`).
    pub core: String,
    /// Outstanding L1 misses holding MSHRs.
    pub mshrs_in_use: usize,
    /// NoC congestion at this tile: `(messages queued at the NI, flits
    /// buffered in the router)`.
    pub ni_backlog: (usize, u32),
}

impl TileStall {
    /// Nothing stuck at this tile — omitted from the rendered report.
    pub fn is_quiet(&self) -> bool {
        self.mshrs_in_use == 0
            && self.ni_backlog == (0, 0)
            && (self.core.starts_with("ready") || self.core == "done")
    }
}

/// The longest-waiting message still traversing the NoC when the
/// watchdog fired (`None` when the network is empty — the livelock is
/// then purely core-side).
#[derive(Clone, Copy, Debug)]
pub struct OldestInFlight {
    /// Cycle the message entered the network.
    pub injected_at: Cycle,
    /// Sender tile.
    pub src: TileId,
    /// Destination tile.
    pub dst: TileId,
    /// Message class.
    pub class: MessageClass,
}

/// Snapshot of one tile's controllers at failure time.
#[derive(Clone, Debug)]
pub struct TileDump {
    /// The tile.
    pub tile: TileId,
    /// What the core is doing (`Core::describe`).
    pub core: String,
    /// Lines with an outstanding L1 miss.
    pub mshr_lines: Vec<Addr>,
    /// Lines mid-transaction at this home slice, with their busy state.
    pub l2_busy: Vec<(Addr, String)>,
    /// Lines awaiting an off-chip fill at this home slice.
    pub l2_fills: Vec<Addr>,
    /// Requests parked in this home slice's pending queues.
    pub l2_pending: usize,
    /// NoC congestion at this tile: `(messages queued at the NI, flits
    /// buffered in the router)`.
    pub ni_backlog: (usize, u32),
}

impl TileDump {
    /// Nothing in flight at this tile — omitted from the rendered dump.
    pub fn is_quiet(&self) -> bool {
        (self.core.starts_with("ready") || self.core == "done")
            && self.mshr_lines.is_empty()
            && self.l2_busy.is_empty()
            && self.l2_fills.is_empty()
            && self.l2_pending == 0
            && self.ni_backlog == (0, 0)
    }
}

/// Full machine snapshot attached to every structured failure: per-tile
/// queue depths, in-flight messages, MSHR and directory-busy state.
#[derive(Clone, Debug)]
pub struct StateDump {
    /// Cycle the snapshot was taken.
    pub cycle: Cycle,
    /// One entry per tile, quiet or not (the `Display` form prints only
    /// the busy ones).
    pub tiles: Vec<TileDump>,
    /// Outstanding off-chip reads as `(tile, line, ready_at)`.
    pub mem_reads: Vec<(TileId, Addr, Cycle)>,
    /// Protocol sends scheduled but not yet injected.
    pub delayed_events: usize,
    /// Messages parked by a fault-injected delay.
    pub held_messages: usize,
    /// Messages anywhere in the network.
    pub live_messages: usize,
}

fn hex_list(lines: &[Addr]) -> String {
    lines
        .iter()
        .map(|a| format!("{a:#x}"))
        .collect::<Vec<_>>()
        .join(", ")
}

impl std::fmt::Display for StateDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "state dump at cycle {}:", self.cycle)?;
        let mut quiet = 0usize;
        for t in &self.tiles {
            if t.is_quiet() {
                quiet += 1;
                continue;
            }
            write!(f, "  tile {}: core {}", t.tile.index(), t.core)?;
            if !t.mshr_lines.is_empty() {
                write!(f, "; MSHRs [{}]", hex_list(&t.mshr_lines))?;
            }
            if !t.l2_busy.is_empty() {
                let busy = t
                    .l2_busy
                    .iter()
                    .map(|(a, s)| format!("{a:#x} {s}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(f, "; L2 busy [{busy}]")?;
            }
            if !t.l2_fills.is_empty() {
                write!(f, "; L2 fills [{}]", hex_list(&t.l2_fills))?;
            }
            if t.l2_pending != 0 {
                write!(f, "; {} queued requests", t.l2_pending)?;
            }
            if t.ni_backlog != (0, 0) {
                write!(
                    f,
                    "; NI backlog {} msgs / {} flits",
                    t.ni_backlog.0, t.ni_backlog.1
                )?;
            }
            writeln!(f)?;
        }
        if quiet > 0 {
            writeln!(f, "  ({quiet} quiet tiles omitted)")?;
        }
        if !self.mem_reads.is_empty() {
            let reads = self
                .mem_reads
                .iter()
                .map(|(t, l, r)| format!("tile {} line {l:#x} ready at {r}", t.index()))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                f,
                "  memory: {} reads outstanding [{reads}]",
                self.mem_reads.len()
            )?;
        }
        writeln!(
            f,
            "  network: {} live messages ({} fault-held); {} delayed sends",
            self.live_messages, self.held_messages, self.delayed_events
        )
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum SimError {
    /// No component can make progress but the workload is unfinished.
    Deadlock {
        cycle: Cycle,
        diagnostics: String,
        dump: Box<StateDump>,
    },
    /// The watchdog fired.
    Watchdog { cycle: Cycle },
    /// The forward-progress watchdog fired: events kept firing (the
    /// clock advanced) but no instruction retired and no message was
    /// delivered for the configured budget — a livelock, caught long
    /// before the [`crate::sim::SimConfig::max_cycles`] cap.
    NoForwardProgress {
        /// Cycle at which the stall was diagnosed.
        cycle: Cycle,
        /// Cycles since the last observed progress.
        stalled_for: Cycle,
        /// One entry per tile (the `Display` form prints only the busy
        /// ones).
        tiles: Vec<TileStall>,
        /// Next delayed protocol send in the calendar, if any.
        calendar_head: Option<Cycle>,
        /// The longest-waiting message still in the network, if any.
        oldest_in_flight: Option<OldestInFlight>,
        dump: Box<StateDump>,
    },
    /// The supervisor's wall-clock deadline for this cell expired before
    /// the run finished (see `supervisor::RunPolicy::wall_deadline`).
    WallDeadline {
        /// Cycle the run had reached when the deadline expired.
        cycle: Cycle,
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// A controller rejected a protocol-illegal message (corrupted or
    /// duplicated traffic, or a genuine protocol bug).
    Protocol {
        cycle: Cycle,
        error: ProtocolError,
        dump: Box<StateDump>,
    },
    /// A sanitizer sweep found the coherence state inconsistent.
    Sanitizer {
        cycle: Cycle,
        violations: Vec<Violation>,
        dump: Box<StateDump>,
    },
    /// The run's worker thread panicked (a simulator bug): the matrix
    /// runner converts the unwind payload into this structured failure
    /// instead of poisoning the whole sweep.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl SimError {
    /// Cycle at which the run failed (0 for failures with no cycle, such
    /// as a worker panic).
    pub fn cycle(&self) -> Cycle {
        match self {
            SimError::Deadlock { cycle, .. }
            | SimError::Watchdog { cycle }
            | SimError::NoForwardProgress { cycle, .. }
            | SimError::WallDeadline { cycle, .. }
            | SimError::Protocol { cycle, .. }
            | SimError::Sanitizer { cycle, .. } => *cycle,
            SimError::Panic { .. } => 0,
        }
    }

    /// The attached machine snapshot (`None` for the cycle-cap watchdog,
    /// wall-clock deadlines and worker panics).
    pub fn dump(&self) -> Option<&StateDump> {
        match self {
            SimError::Deadlock { dump, .. }
            | SimError::NoForwardProgress { dump, .. }
            | SimError::Protocol { dump, .. }
            | SimError::Sanitizer { dump, .. } => Some(dump),
            SimError::Watchdog { .. } | SimError::WallDeadline { .. } | SimError::Panic { .. } => {
                None
            }
        }
    }

    /// Stable one-word classification of the failure, used by the run
    /// journal and the supervisor's forensic verdicts (the full `Display`
    /// form can run to hundreds of lines of state dump).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::Watchdog { .. } => "cycle-cap",
            SimError::NoForwardProgress { .. } => "no-forward-progress",
            SimError::WallDeadline { .. } => "wall-deadline",
            SimError::Protocol { .. } => "protocol",
            SimError::Sanitizer { .. } => "sanitizer",
            SimError::Panic { .. } => "panic",
        }
    }

    /// A one-line summary (kind, cycle, and the panic message when there
    /// is one) suitable for journal fail records.
    pub fn brief(&self) -> String {
        match self {
            SimError::Panic { message } => format!("panic: {message}"),
            other => format!("{} at cycle {}", other.kind(), other.cycle()),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                diagnostics,
                dump,
            } => {
                writeln!(f, "deadlock at cycle {cycle}: {diagnostics}")?;
                write!(f, "{dump}")
            }
            SimError::Watchdog { cycle } => write!(f, "watchdog at cycle {cycle}"),
            SimError::NoForwardProgress {
                cycle,
                stalled_for,
                tiles,
                calendar_head,
                oldest_in_flight,
                dump,
            } => {
                writeln!(
                    f,
                    "no forward progress for {stalled_for} cycles at cycle {cycle}: \
                     no instruction retired, no message delivered"
                )?;
                let mut quiet = 0usize;
                for t in tiles {
                    if t.is_quiet() {
                        quiet += 1;
                        continue;
                    }
                    writeln!(
                        f,
                        "  tile {}: core {}; {} MSHRs in use; NI backlog {} msgs / {} flits",
                        t.tile.index(),
                        t.core,
                        t.mshrs_in_use,
                        t.ni_backlog.0,
                        t.ni_backlog.1
                    )?;
                }
                if quiet > 0 {
                    writeln!(f, "  ({quiet} quiet tiles omitted)")?;
                }
                match calendar_head {
                    Some(at) => writeln!(f, "  calendar head: delayed send at cycle {at}")?,
                    None => writeln!(f, "  calendar head: no delayed sends")?,
                }
                match oldest_in_flight {
                    Some(m) => writeln!(
                        f,
                        "  oldest in-flight message: {:?} {} -> {} injected at cycle {}",
                        m.class,
                        m.src.index(),
                        m.dst.index(),
                        m.injected_at
                    )?,
                    None => writeln!(f, "  network is empty")?,
                }
                write!(f, "{dump}")
            }
            SimError::WallDeadline { cycle, limit_ms } => write!(
                f,
                "wall-clock deadline of {limit_ms} ms expired at cycle {cycle}"
            ),
            SimError::Protocol { cycle, error, dump } => {
                writeln!(f, "protocol error at cycle {cycle}: {error}")?;
                write!(f, "{dump}")
            }
            SimError::Sanitizer {
                cycle,
                violations,
                dump,
            } => {
                writeln!(
                    f,
                    "sanitizer found {} violation(s) at cycle {cycle}:",
                    violations.len()
                )?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                write!(f, "{dump}")
            }
            SimError::Panic { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl std::error::Error for SimError {}
