//! Structured failure reporting: every abnormal end of a run carries a
//! machine snapshot instead of a panic.

use cmp_common::types::{Addr, Cycle, TileId};
use coherence::sanitizer::Violation;
use coherence::ProtocolError;

/// Snapshot of one tile's controllers at failure time.
#[derive(Clone, Debug)]
pub struct TileDump {
    /// The tile.
    pub tile: TileId,
    /// What the core is doing (`Core::describe`).
    pub core: String,
    /// Lines with an outstanding L1 miss.
    pub mshr_lines: Vec<Addr>,
    /// Lines mid-transaction at this home slice, with their busy state.
    pub l2_busy: Vec<(Addr, String)>,
    /// Lines awaiting an off-chip fill at this home slice.
    pub l2_fills: Vec<Addr>,
    /// Requests parked in this home slice's pending queues.
    pub l2_pending: usize,
    /// NoC congestion at this tile: `(messages queued at the NI, flits
    /// buffered in the router)`.
    pub ni_backlog: (usize, u32),
}

impl TileDump {
    /// Nothing in flight at this tile — omitted from the rendered dump.
    pub fn is_quiet(&self) -> bool {
        (self.core.starts_with("ready") || self.core == "done")
            && self.mshr_lines.is_empty()
            && self.l2_busy.is_empty()
            && self.l2_fills.is_empty()
            && self.l2_pending == 0
            && self.ni_backlog == (0, 0)
    }
}

/// Full machine snapshot attached to every structured failure: per-tile
/// queue depths, in-flight messages, MSHR and directory-busy state.
#[derive(Clone, Debug)]
pub struct StateDump {
    /// Cycle the snapshot was taken.
    pub cycle: Cycle,
    /// One entry per tile, quiet or not (the `Display` form prints only
    /// the busy ones).
    pub tiles: Vec<TileDump>,
    /// Outstanding off-chip reads as `(tile, line, ready_at)`.
    pub mem_reads: Vec<(TileId, Addr, Cycle)>,
    /// Protocol sends scheduled but not yet injected.
    pub delayed_events: usize,
    /// Messages parked by a fault-injected delay.
    pub held_messages: usize,
    /// Messages anywhere in the network.
    pub live_messages: usize,
}

fn hex_list(lines: &[Addr]) -> String {
    lines
        .iter()
        .map(|a| format!("{a:#x}"))
        .collect::<Vec<_>>()
        .join(", ")
}

impl std::fmt::Display for StateDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "state dump at cycle {}:", self.cycle)?;
        let mut quiet = 0usize;
        for t in &self.tiles {
            if t.is_quiet() {
                quiet += 1;
                continue;
            }
            write!(f, "  tile {}: core {}", t.tile.index(), t.core)?;
            if !t.mshr_lines.is_empty() {
                write!(f, "; MSHRs [{}]", hex_list(&t.mshr_lines))?;
            }
            if !t.l2_busy.is_empty() {
                let busy = t
                    .l2_busy
                    .iter()
                    .map(|(a, s)| format!("{a:#x} {s}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(f, "; L2 busy [{busy}]")?;
            }
            if !t.l2_fills.is_empty() {
                write!(f, "; L2 fills [{}]", hex_list(&t.l2_fills))?;
            }
            if t.l2_pending != 0 {
                write!(f, "; {} queued requests", t.l2_pending)?;
            }
            if t.ni_backlog != (0, 0) {
                write!(
                    f,
                    "; NI backlog {} msgs / {} flits",
                    t.ni_backlog.0, t.ni_backlog.1
                )?;
            }
            writeln!(f)?;
        }
        if quiet > 0 {
            writeln!(f, "  ({quiet} quiet tiles omitted)")?;
        }
        if !self.mem_reads.is_empty() {
            let reads = self
                .mem_reads
                .iter()
                .map(|(t, l, r)| format!("tile {} line {l:#x} ready at {r}", t.index()))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                f,
                "  memory: {} reads outstanding [{reads}]",
                self.mem_reads.len()
            )?;
        }
        writeln!(
            f,
            "  network: {} live messages ({} fault-held); {} delayed sends",
            self.live_messages, self.held_messages, self.delayed_events
        )
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum SimError {
    /// No component can make progress but the workload is unfinished.
    Deadlock {
        cycle: Cycle,
        diagnostics: String,
        dump: Box<StateDump>,
    },
    /// The watchdog fired.
    Watchdog { cycle: Cycle },
    /// A controller rejected a protocol-illegal message (corrupted or
    /// duplicated traffic, or a genuine protocol bug).
    Protocol {
        cycle: Cycle,
        error: ProtocolError,
        dump: Box<StateDump>,
    },
    /// A sanitizer sweep found the coherence state inconsistent.
    Sanitizer {
        cycle: Cycle,
        violations: Vec<Violation>,
        dump: Box<StateDump>,
    },
    /// The run's worker thread panicked (a simulator bug): the matrix
    /// runner converts the unwind payload into this structured failure
    /// instead of poisoning the whole sweep.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl SimError {
    /// Cycle at which the run failed (0 for failures with no cycle, such
    /// as a worker panic).
    pub fn cycle(&self) -> Cycle {
        match self {
            SimError::Deadlock { cycle, .. }
            | SimError::Watchdog { cycle }
            | SimError::Protocol { cycle, .. }
            | SimError::Sanitizer { cycle, .. } => *cycle,
            SimError::Panic { .. } => 0,
        }
    }

    /// The attached machine snapshot (`None` for the watchdog and worker
    /// panics).
    pub fn dump(&self) -> Option<&StateDump> {
        match self {
            SimError::Deadlock { dump, .. }
            | SimError::Protocol { dump, .. }
            | SimError::Sanitizer { dump, .. } => Some(dump),
            SimError::Watchdog { .. } | SimError::Panic { .. } => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                diagnostics,
                dump,
            } => {
                writeln!(f, "deadlock at cycle {cycle}: {diagnostics}")?;
                write!(f, "{dump}")
            }
            SimError::Watchdog { cycle } => write!(f, "watchdog at cycle {cycle}"),
            SimError::Protocol { cycle, error, dump } => {
                writeln!(f, "protocol error at cycle {cycle}: {error}")?;
                write!(f, "{dump}")
            }
            SimError::Sanitizer {
                cycle,
                violations,
                dump,
            } => {
                writeln!(
                    f,
                    "sanitizer found {} violation(s) at cycle {cycle}:",
                    violations.len()
                )?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                write!(f, "{dump}")
            }
            SimError::Panic { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl std::error::Error for SimError {}
