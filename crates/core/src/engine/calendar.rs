//! The engine's event calendar: delayed protocol sends plus the
//! incremental core-readiness index.
//!
//! Two structures, both lazily maintained so the hot loop never scans:
//!
//! * a min-heap of [`DelayedEvent`]s — protocol messages charged a local
//!   array-access latency before injection/delivery, fired in
//!   `(cycle, sequence)` order so ties break deterministically;
//! * a lazily-invalidated min-heap over `(ready_at, tile)` with a cached
//!   `core_next` array as the source of truth — stale entries are
//!   discarded on pop, so re-scheduling a core is O(log n) with no
//!   delete-from-heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cmp_common::types::{Cycle, TileId};
use coherence::msg::ProtocolMsg;

/// A protocol message delayed by a local array-access latency before
/// injection/delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct DelayedEvent {
    pub(crate) at: Cycle,
    pub(crate) seq: u64,
    pub(crate) src: TileId,
    pub(crate) dst: TileId,
    pub(crate) msg: ProtocolMsg,
}

impl Ord for DelayedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for DelayedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Delayed protocol sends plus the core-readiness index, extracted from
/// the old monolithic simulator so scheduling policy lives in one place.
#[derive(Clone, Debug)]
pub struct Calendar {
    delayed: BinaryHeap<Reverse<DelayedEvent>>,
    /// Monotonic tie-breaker: events due the same cycle fire in the order
    /// they were scheduled, which the determinism goldens depend on.
    seq: u64,
    /// Cached ready cycle per core (`Cycle::MAX` when blocked or done),
    /// the source of truth the heap entries are validated against.
    pub(crate) core_next: Vec<Cycle>,
    /// Lazily-invalidated min-heap over `(ready_at, tile)`: an entry is
    /// live iff it matches `core_next`; stale entries are discarded on pop.
    core_heap: BinaryHeap<Reverse<(Cycle, u32)>>,
}

cmp_common::impl_snapshot_clone!(Calendar);

impl Calendar {
    /// A calendar for `tiles` cores, all ready at cycle 0.
    pub(crate) fn new(tiles: usize) -> Self {
        Calendar {
            delayed: BinaryHeap::new(),
            seq: 0,
            core_next: vec![0; tiles],
            core_heap: (0..tiles as u32).map(|t| Reverse((0, t))).collect(),
        }
    }

    /// Schedule a protocol send to fire `delay` cycles after `now`.
    pub(crate) fn schedule(
        &mut self,
        now: Cycle,
        src: TileId,
        dst: TileId,
        msg: ProtocolMsg,
        delay: u64,
    ) {
        self.seq += 1;
        self.delayed.push(Reverse(DelayedEvent {
            at: now + delay,
            seq: self.seq,
            src,
            dst,
            msg,
        }));
    }

    /// Pop the next delayed event due at/before `now`, in
    /// `(cycle, sequence)` order.
    pub(crate) fn pop_delayed_due(&mut self, now: Cycle) -> Option<DelayedEvent> {
        let Reverse(ev) = self.delayed.peek()?;
        if ev.at > now {
            return None;
        }
        self.delayed.pop().map(|Reverse(ev)| ev)
    }

    /// Cycle of the earliest scheduled send (`None` when empty).
    pub(crate) fn next_delayed(&self) -> Option<Cycle> {
        self.delayed.peek().map(|Reverse(ev)| ev.at)
    }

    /// Scheduled sends not yet fired.
    pub fn delayed_len(&self) -> usize {
        self.delayed.len()
    }

    /// Re-cache core `t`'s ready cycle after its state may have changed.
    pub(crate) fn set_core_ready(&mut self, t: usize, ready: Cycle) {
        if ready != self.core_next[t] {
            self.core_next[t] = ready;
            if ready != Cycle::MAX {
                self.core_heap.push(Reverse((ready, t as u32)));
            }
        }
    }

    /// Earliest live core-ready cycle; pops stale heap entries on the way.
    pub(crate) fn earliest_ready_core(&mut self) -> Option<Cycle> {
        while let Some(&Reverse((at, t))) = self.core_heap.peek() {
            if self.core_next[t as usize] == at {
                return Some(at);
            }
            self.core_heap.pop();
        }
        None
    }

    /// Collect the tiles whose cores are due at/before `now` into `due`,
    /// deduplicated and in ascending tile order. Stale heap entries
    /// (cache mismatch) are dropped; live duplicates carry identical
    /// `(at, t)` pairs, so a sort + dedup leaves each due tile once.
    /// Ascending tile order — not heap order — reproduces the original
    /// full scan exactly, keeping delayed-event sequencing (and therefore
    /// the determinism goldens) bit-identical.
    pub(crate) fn drain_cores_due(&mut self, now: Cycle, due: &mut Vec<u32>) {
        due.clear();
        while let Some(&Reverse((at, t))) = self.core_heap.peek() {
            if at > now {
                break;
            }
            self.core_heap.pop();
            if self.core_next[t as usize] == at {
                due.push(t);
            }
        }
        due.sort_unstable();
        due.dedup();
    }
}

cmp_common::impl_persist!(DelayedEvent {
    at,
    seq,
    src,
    dst,
    msg,
});

/// Heaps are encoded as sorted vectors: [`DelayedEvent`]s are totally
/// ordered by `(at, seq)` and the core index entries by `(ready, tile)`,
/// so pop order — and therefore the replayed schedule — is independent of
/// the heap's internal layout. The core heap is re-derived from
/// `core_next` at load (stale entries are discarded on pop anyway, so the
/// canonical rebuild is behaviourally identical).
impl cmp_common::persist::PersistState for Calendar {
    fn save_state(&self, w: &mut cmp_common::persist::ByteWriter) {
        use cmp_common::persist::Persist;
        let mut delayed: Vec<DelayedEvent> = self.delayed.iter().map(|Reverse(ev)| *ev).collect();
        delayed.sort_unstable_by_key(|ev| (ev.at, ev.seq));
        delayed.save(w);
        w.u64(self.seq);
        self.core_next.save(w);
    }
    fn load_state(
        &mut self,
        r: &mut cmp_common::persist::ByteReader,
    ) -> Result<(), cmp_common::persist::PersistError> {
        use cmp_common::persist::Persist;
        let delayed: Vec<DelayedEvent> = Persist::load(r)?;
        self.seq = r.u64()?;
        if delayed.iter().any(|ev| ev.seq > self.seq) {
            return Err(r.err("delayed event sequence exceeds the allocator"));
        }
        let core_next: Vec<Cycle> = Persist::load(r)?;
        if core_next.len() != self.core_next.len() {
            return Err(r.err("core count does not match machine shape"));
        }
        self.delayed = delayed.into_iter().map(Reverse).collect();
        self.core_next = core_next;
        self.core_heap = self
            .core_next
            .iter()
            .enumerate()
            .filter(|&(_, &at)| at != Cycle::MAX)
            .map(|(t, &at)| Reverse((at, t as u32)))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> ProtocolMsg {
        ProtocolMsg::new(coherence::msg::PKind::GetS, 0x40)
    }

    #[test]
    fn delayed_events_fire_in_cycle_then_sequence_order() {
        let mut cal = Calendar::new(2);
        cal.schedule(0, TileId(0), TileId(1), msg(), 5);
        cal.schedule(0, TileId(1), TileId(0), msg(), 5);
        cal.schedule(0, TileId(0), TileId(0), msg(), 2);
        assert_eq!(cal.next_delayed(), Some(2));
        assert!(cal.pop_delayed_due(1).is_none());
        assert_eq!(cal.pop_delayed_due(5).map(|e| e.at), Some(2));
        // same cycle → scheduling order
        assert_eq!(cal.pop_delayed_due(5).map(|e| e.src), Some(TileId(0)));
        assert_eq!(cal.pop_delayed_due(5).map(|e| e.src), Some(TileId(1)));
        assert_eq!(cal.delayed_len(), 0);
    }

    #[test]
    fn core_index_discards_stale_entries() {
        let mut cal = Calendar::new(3);
        assert_eq!(cal.earliest_ready_core(), Some(0));
        cal.set_core_ready(0, 10);
        cal.set_core_ready(1, 4);
        cal.set_core_ready(2, Cycle::MAX); // blocked
        assert_eq!(cal.earliest_ready_core(), Some(4));
        let mut due = Vec::new();
        cal.drain_cores_due(4, &mut due);
        assert_eq!(due, vec![1]);
        cal.set_core_ready(1, Cycle::MAX);
        assert_eq!(cal.earliest_ready_core(), Some(10));
    }
}
