use super::*;
use cmp_common::snapshot::Snapshot;
use cmp_common::types::MessageClass;
use wire_model::wires::VlWidth;
use workloads::synthetic;

use crate::sim::CmpSimulator;

const SEED: u64 = 0xC0FFEE;

fn run_app(app: &AppProfile, cfg: SimConfig, scale: f64) -> SimResult {
    let mut sim = CmpSimulator::new(cfg, app, SEED, scale);
    sim.run().unwrap_or_else(|e| panic!("{}: {e}", app.name))
}

#[test]
fn home_mappings_agree() {
    assert!(CmpSimulator::homes_agree(&CmpConfig::default()));
}

#[test]
fn streaming_workload_completes_on_baseline() {
    let app = synthetic::streaming(3_000, 4096);
    let r = run_app(&app, SimConfig::baseline(), 1.0);
    assert!(r.cycles > 0);
    assert!(r.instructions > 0);
    assert!(r.network_messages > 0, "streaming misses generate traffic");
    assert!(r.l1_miss_rate > 0.01, "4096-line stream must miss");
    assert!(r.energy.chip().value() > 0.0);
}

#[test]
fn hotspot_exercises_coherence_on_all_configs() {
    let app = synthetic::hotspot(1_500, 64);
    for cfg in [
        SimConfig::baseline(),
        SimConfig::new(
            InterconnectChoice::Heterogeneous(VlWidth::FiveBytes),
            CompressionScheme::Dbrc {
                entries: 4,
                low_bytes: 2,
            },
        ),
    ] {
        let r = run_app(&app, cfg, 1.0);
        // migratory lines force forwards + revisions
        assert!(
            r.class_fraction(MessageClass::CoherenceCmd) > 0.05,
            "{:?}: coherence commands missing",
            r.interconnect
        );
        assert!(r.class_fraction(MessageClass::ResponseData) > 0.10);
    }
}

#[test]
fn deterministic_across_runs() {
    let app = synthetic::uniform_random(1_000, 1 << 14, 0.3);
    let cfg = SimConfig::new(
        InterconnectChoice::Heterogeneous(VlWidth::FourBytes),
        CompressionScheme::Dbrc {
            entries: 16,
            low_bytes: 1,
        },
    );
    let a = run_app(&app, cfg.clone(), 1.0);
    let b = run_app(&app, cfg, 1.0);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.network_messages, b.network_messages);
    assert!((a.energy.chip().value() - b.energy.chip().value()).abs() < 1e-15);
}

#[test]
fn heterogeneous_with_compression_beats_baseline_on_traffic_bound_load() {
    let app = synthetic::hotspot(2_000, 128);
    let base = run_app(&app, SimConfig::baseline(), 1.0);
    let prop = run_app(
        &app,
        SimConfig::new(
            InterconnectChoice::Heterogeneous(VlWidth::FiveBytes),
            CompressionScheme::Perfect { low_bytes: 2 },
        ),
        1.0,
    );
    assert!(
        prop.cycles < base.cycles,
        "proposal {} vs baseline {}",
        prop.cycles,
        base.cycles
    );
    assert!(
        prop.critical_latency < base.critical_latency,
        "critical latency should shrink: {} vs {}",
        prop.critical_latency,
        base.critical_latency
    );
}

#[test]
fn perfect_compression_yields_full_coverage() {
    let app = synthetic::uniform_random(1_000, 1 << 16, 0.3);
    let r = run_app(
        &app,
        SimConfig::new(
            InterconnectChoice::Heterogeneous(VlWidth::FourBytes),
            CompressionScheme::Perfect { low_bytes: 1 },
        ),
        1.0,
    );
    assert!((r.coverage - 1.0).abs() < 1e-12);
    // and DBRC on a streaming load gets high but imperfect coverage
    let s = synthetic::streaming(2_000, 4096);
    let r = run_app(
        &s,
        SimConfig::new(
            InterconnectChoice::Heterogeneous(VlWidth::FiveBytes),
            CompressionScheme::Dbrc {
                entries: 4,
                low_bytes: 2,
            },
        ),
        1.0,
    );
    assert!(r.coverage > 0.9, "streaming coverage {}", r.coverage);
    assert!(r.coverage < 1.0);
}

#[test]
fn barriers_synchronise_all_cores() {
    let mut app = synthetic::streaming(2_000, 512);
    app.barriers = 5;
    let r = run_app(&app, SimConfig::baseline(), 1.0);
    assert!(r.cycles > 0);
}

#[test]
fn real_app_smoke_mp3d() {
    let app = workloads::apps::mp3d();
    let r = run_app(&app, SimConfig::baseline(), 0.01);
    assert!(r.network_messages > 1_000);
    // Figure 5 sanity: all fractions sum to 1
    let total: f64 = MessageClass::ALL.iter().map(|&c| r.class_fraction(c)).sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn reply_partitioning_completes_and_splits_responses() {
    let app = synthetic::uniform_random(1_500, 1 << 15, 0.3);
    let base = run_app(&app, SimConfig::baseline(), 1.0);
    let rp = run_app(
        &app,
        SimConfig::new(
            InterconnectChoice::ReplyPartitioning,
            CompressionScheme::None,
        ),
        1.0,
    );
    // every remote data response gains a partial twin
    let count = |r: &SimResult, class| {
        r.messages
            .iter()
            .find(|c| c.class == class)
            .map(|c| (c.count, c.mean_latency))
            .unwrap_or((0, 0.0))
    };
    let (partials, partial_lat) = count(&rp, MessageClass::PartialReply);
    let (data, data_lat) = count(&rp, MessageClass::ResponseData);
    assert!(partials > 0);
    assert!(
        partials.abs_diff(data) <= data / 10,
        "partials {partials} should track data responses {data}"
    );
    // the partial replies run well ahead of the PW-wire data
    assert!(
        partial_lat < data_lat * 0.6,
        "partial {partial_lat} vs ordinary {data_lat}"
    );
    // and the run is no slower than the baseline
    assert!(
        rp.cycles <= base.cycles * 101 / 100,
        "RP {} vs baseline {}",
        rp.cycles,
        base.cycles
    );
}

/// The incremental event calendar (core-ready heap, done/busy
/// counters, cached ready cycles) must agree with brute-force scans
/// of the underlying components after every scheduler iteration,
/// across randomized workloads and both interconnects.
#[test]
fn event_calendar_matches_brute_force_scans() {
    use cmp_common::randtest::{self, f64_in, u64_in, usize_in};
    randtest::run_cases("sim-event-calendar", 4, |rng| {
        let ops = u64_in(rng, 400, 1_200);
        let lines = 1u64 << usize_in(rng, 8, 12);
        let writes = f64_in(rng, 0.2, 0.6);
        let app = synthetic::uniform_random(ops, lines, writes);
        let cfg = if rng.chance(0.5) {
            SimConfig::baseline()
        } else {
            SimConfig::new(
                InterconnectChoice::Heterogeneous(VlWidth::FourBytes),
                CompressionScheme::Dbrc {
                    entries: 4,
                    low_bytes: 2,
                },
            )
        };
        let mut engine = Engine::new(cfg, &app, rng.next_u64(), 1.0);
        let mut iters = 0u64;
        loop {
            let more = engine.step_iteration().expect("run must not deadlock");
            let unfinished = engine.tiles.iter().filter(|t| !t.core.is_done()).count();
            assert_eq!(engine.cores_unfinished, unfinished, "done counter drifted");
            let busy = engine
                .l2s
                .iter()
                .filter(|b| !b.slice.is_quiescent())
                .count();
            assert_eq!(engine.busy_l2_count, busy, "busy-L2 counter drifted");
            for (d, bank) in engine.l2s.iter().enumerate() {
                assert_eq!(bank.busy, !bank.slice.is_quiescent(), "bank {d} flag");
            }
            for (t, tile) in engine.tiles.iter().enumerate() {
                assert_eq!(
                    engine.calendar.core_next[t],
                    tile.core.ready_at().unwrap_or(Cycle::MAX),
                    "cached ready cycle for core {t}"
                );
            }
            let brute = engine.tiles.iter().filter_map(|t| t.core.ready_at()).min();
            assert_eq!(
                engine.calendar.earliest_ready_core(),
                brute,
                "calendar head"
            );
            iters += 1;
            if !more {
                break;
            }
        }
        assert!(iters > 10, "workload too small to exercise the calendar");
    });
}

#[test]
fn watchdog_fires_on_tiny_budget() {
    let app = synthetic::streaming(5_000, 4096);
    let mut cfg = SimConfig::baseline();
    cfg.max_cycles = 100;
    let mut sim = CmpSimulator::new(cfg, &app, SEED, 1.0);
    match sim.run() {
        Err(SimError::Watchdog { .. }) => {}
        other => panic!("expected watchdog, got {other:?}"),
    }
}

fn compressed_cfg() -> SimConfig {
    SimConfig::new(
        InterconnectChoice::Heterogeneous(VlWidth::FourBytes),
        CompressionScheme::Dbrc {
            entries: 16,
            low_bytes: 1,
        },
    )
}

#[test]
fn sanitizer_sweeps_are_neutral_on_a_clean_run() {
    let app = synthetic::hotspot(1_200, 64);
    let mut off = compressed_cfg();
    off.sanitizer = None;
    let mut on = compressed_cfg();
    on.sanitizer = Some(coherence::sanitizer::SanitizerConfig { period: 128 });
    let a = run_app(&app, off, 1.0);
    let b = run_app(&app, on, 1.0);
    assert_eq!(a.cycles, b.cycles, "sweeps must not perturb the run");
    assert_eq!(a.network_messages, b.network_messages);
    assert_eq!(a.sanitizer_sweeps, 0);
    assert!(b.sanitizer_sweeps > 0, "sweeps must actually run");
}

#[test]
fn desync_faults_are_detected_and_recovered() {
    let app = synthetic::hotspot(1_500, 64);
    let mut cfg = compressed_cfg();
    cfg.faults = FaultConfig::desync_only(0xDE57_AC, 0.02, 50);
    let r = run_app(&app, cfg, 1.0);
    assert!(r.fault_stats.desyncs.get() > 0, "campaign must fire");
    assert!(r.resync.desyncs_detected > 0, "tags must catch divergence");
    assert!(
        r.resync.desyncs_detected <= r.fault_stats.desyncs.get(),
        "injections between detections coalesce"
    );
    assert_eq!(
        r.resync.resyncs_completed, r.resync.desyncs_detected,
        "every detected divergence recovers"
    );
    assert!(r.resync.fallback_msgs >= r.resync.desyncs_detected);
}

#[test]
fn fault_free_campaign_config_changes_nothing() {
    let app = synthetic::uniform_random(800, 1 << 12, 0.3);
    let clean = run_app(&app, compressed_cfg(), 1.0);
    let mut cfg = compressed_cfg();
    cfg.faults = FaultConfig {
        seed: 42,
        ..FaultConfig::none()
    };
    let r = run_app(&app, cfg, 1.0);
    assert_eq!(clean.cycles, r.cycles, "disabled faults are bit-neutral");
    assert_eq!(clean.network_messages, r.network_messages);
    assert_eq!(r.fault_stats.total(), 0);
    assert_eq!(r.resync, crate::niface::ResyncStats::default());
}

#[test]
fn corrupt_fault_is_rejected_as_structured_protocol_error() {
    let app = synthetic::streaming(2_000, 2048);
    let mut cfg = SimConfig::baseline();
    cfg.faults = FaultConfig {
        seed: 11,
        corrupt: 1.0,
        max_faults: Some(1),
        ..FaultConfig::none()
    };
    let mut sim = CmpSimulator::new(cfg, &app, SEED, 1.0);
    match sim.run() {
        Err(SimError::Protocol { cycle, error, dump }) => {
            assert!(cycle > 0);
            let s = error.to_string();
            assert!(s.contains("tile") && s.contains("line"), "{s}");
            assert_eq!(dump.cycle, cycle);
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
}

#[test]
fn sanitizer_catches_every_injected_invariant_class() {
    use coherence::sanitizer::Invariant;
    for class in [
        Invariant::SingleOwner,
        Invariant::SharerAgreement,
        Invariant::MshrConsistency,
        Invariant::DirectoryInclusion,
    ] {
        let app = synthetic::hotspot(1_500, 64);
        let mut cfg = SimConfig::baseline();
        cfg.sanitizer = Some(coherence::sanitizer::SanitizerConfig { period: 64 });
        let mut sim = CmpSimulator::new(cfg, &app, SEED, 1.0);
        // Warm the machine until the hook finds a target, then run on.
        let mut injected = None;
        let outcome = loop {
            match sim.step() {
                Ok(true) => {}
                Ok(false) => break Ok(()),
                Err(e) => break Err(e),
            }
            if injected.is_none() {
                injected = sim.fault_inject_violation(class);
            }
        };
        let (tile, line) = injected.unwrap_or_else(|| panic!("{class:?}: no target found"));
        match outcome {
            Err(SimError::Sanitizer {
                violations, dump, ..
            }) => {
                assert!(
                    violations.iter().any(|v| v.invariant == class),
                    "{class:?} not reported: {violations:?}"
                );
                let v = violations.iter().find(|v| v.invariant == class).unwrap();
                let s = v.to_string();
                assert!(
                    s.contains("cycle") && s.contains("tile") && s.contains("0x"),
                    "finding must name cycle, tile and line: {s}"
                );
                // the corrupted coordinates appear among the findings
                assert!(
                    violations.iter().any(|v| v.line == line
                        && (v.tile == tile || class == Invariant::SharerAgreement)),
                    "{class:?}: injected ({tile:?}, {line:#x}) missing from {violations:?}"
                );
                assert!(dump.cycle > 0);
            }
            other => panic!("{class:?}: expected sanitizer abort, got {other:?}"),
        }
    }
}

/// A snapshot taken mid-run restores into the same engine and replays
/// the remaining schedule bit-identically.
#[test]
fn engine_snapshot_round_trips_mid_run() {
    let app = synthetic::hotspot(1_500, 64);
    let cfg = compressed_cfg();

    // Straight run for the reference result.
    let mut straight = Engine::new(cfg.clone(), &app, SEED, 1.0);
    while straight.step_iteration().expect("clean run") {}
    let reference = straight.collect();

    // Checkpoint partway, run to completion, then rewind and re-run.
    let mut engine = Engine::new(cfg, &app, SEED, 1.0);
    for _ in 0..200 {
        assert!(engine.step_iteration().expect("clean run"));
    }
    let snap = engine.snapshot();
    assert_eq!(snap.cycle(), engine.now());
    while engine.step_iteration().expect("clean run") {}
    let first = engine.collect();

    engine.restore(&snap);
    assert_eq!(engine.now(), snap.cycle());
    while engine.step_iteration().expect("clean run") {}
    let second = engine.collect();

    for r in [&first, &second] {
        assert_eq!(r.cycles, reference.cycles, "restore perturbed the run");
        assert_eq!(r.network_messages, reference.network_messages);
        assert_eq!(r.instructions, reference.instructions);
        assert!((r.energy.chip().value() - reference.energy.chip().value()).abs() < 1e-15);
    }
}

#[test]
fn env_knob_parsing_accepted_forms() {
    // TCMP_SIM_THREADS: a positive integer or nothing.
    assert_eq!(parse_sim_threads(""), Ok(None));
    assert_eq!(parse_sim_threads("  "), Ok(None));
    assert_eq!(parse_sim_threads("1"), Ok(Some(1)));
    assert_eq!(parse_sim_threads(" 8 "), Ok(Some(8)));
    for bad in ["0", "-2", "two", "1.5", "8,"] {
        let err = parse_sim_threads(bad).expect_err(bad);
        assert!(err.contains("TCMP_SIM_THREADS"), "warning names the knob");
        assert!(err.contains("accepted"), "warning documents accepted forms");
    }
    // TCMP_SANITIZE: 0/empty off, 1 on, anything else malformed.
    assert_eq!(parse_sanitize(""), Ok(false));
    assert_eq!(parse_sanitize("0"), Ok(false));
    assert_eq!(parse_sanitize("1"), Ok(true));
    for bad in ["yes", "on", "2", "true"] {
        let err = parse_sanitize(bad).expect_err(bad);
        assert!(err.contains("TCMP_SANITIZE"), "warning names the knob");
        assert!(err.contains("accepted"), "warning documents accepted forms");
    }
}

#[test]
fn byte_encoded_snapshot_resumes_bit_identically() {
    // The disk-spill round trip: run to a mid-point, encode the machine
    // as bytes, decode into a *fresh* machine's template snapshot, and
    // check both finish with identical results — the property the
    // checkpoint store's warm starts rest on.
    let app = synthetic::hotspot(1_500, 64);
    let cfg = compressed_cfg();

    let mut original = Engine::new(cfg.clone(), &app, SEED, 1.0);
    for _ in 0..200 {
        assert!(original.step_iteration().expect("clean run"));
    }
    let snap = original.snapshot();
    let bytes = snap.save_bytes();

    let mut resumed = Engine::new(cfg.clone(), &app, SEED, 1.0);
    let mut template = resumed.snapshot();
    template.load_bytes(&bytes).expect("decode");
    assert_eq!(
        template.digest(),
        snap.digest(),
        "decoded machine digests equal"
    );
    assert_eq!(template.cycle(), snap.cycle());
    resumed.try_restore(&template).expect("restore");

    let finish = |e: &mut Engine| {
        while e.step_iteration().expect("clean run") {}
        e.collect()
    };
    let (a, b) = (finish(&mut original), finish(&mut resumed));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.network_messages, b.network_messages);
    assert_eq!(a.mem_stall_cycles, b.mem_stall_cycles);
    assert_eq!(a.barrier_stall_cycles, b.barrier_stall_cycles);
    assert_eq!(a.mem_reads, b.mem_reads);
    assert!((a.energy.chip().value() - b.energy.chip().value()).abs() == 0.0);
    assert!((a.coverage - b.coverage).abs() == 0.0);
}

#[test]
fn corrupt_snapshot_bytes_are_structured_errors_never_panics() {
    let app = synthetic::hotspot(800, 64);
    let cfg = compressed_cfg();
    let mut engine = Engine::new(cfg.clone(), &app, SEED, 1.0);
    for _ in 0..100 {
        assert!(engine.step_iteration().expect("clean run"));
    }
    let bytes = engine.snapshot().save_bytes();
    let template = || Engine::new(cfg.clone(), &app, SEED, 1.0).snapshot();

    // Truncation at any point must fail cleanly.
    for cut in [0, 1, 8, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
        template()
            .load_bytes(&bytes[..cut])
            .expect_err("truncated bytes must not load");
    }
    // Trailing garbage is rejected (finish() catches it).
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 7]);
    template()
        .load_bytes(&padded)
        .expect_err("trailing bytes must not load");
    // Single-bit rot must never panic: it either fails to decode or
    // decodes to a perturbed machine. Rot in non-schedule state (counter
    // values, energy accumulators) can slip past the machine digest — by
    // design; catching arbitrary byte corruption is the checkpoint
    // store's whole-payload checksum's job, exercised in its own tests.
    for flip_at in (0..bytes.len()).step_by(bytes.len() / 97 + 1) {
        let mut rotted = bytes.clone();
        rotted[flip_at] ^= 0x10;
        let _ = template().load_bytes(&rotted);
    }
}

#[test]
fn snapshot_digest_detects_corruption_and_matches_reruns() {
    let app = synthetic::hotspot(1_500, 64);
    let cfg = compressed_cfg();

    let mut engine = Engine::new(cfg.clone(), &app, SEED, 1.0);
    for _ in 0..200 {
        assert!(engine.step_iteration().expect("clean run"));
    }
    let snap = engine.snapshot();
    let digest = snap.digest();
    assert_eq!(snap.digest(), digest, "digest is a pure function");

    // The same prefix re-simulated yields the same digest.
    let mut again = Engine::new(cfg, &app, SEED, 1.0);
    for _ in 0..200 {
        assert!(again.step_iteration().expect("clean run"));
    }
    assert_eq!(again.snapshot().digest(), digest);

    // Any perturbation of the captured machine changes it.
    let mut torn = snap.clone();
    torn.fault_corrupt();
    assert_ne!(torn.digest(), digest);
}
