//! The per-tile component: core + private L1 + network interface, with
//! the shared-L2 bank as its sibling.
//!
//! A [`Tile`] owns everything private to one node of the mesh; an
//! [`L2Bank`] owns one slice of the shared NUCA L2 plus its cached
//! busy flag. Both are plain data, so the machine-level snapshot is the
//! composition of their per-component [`Snapshot`]s.

use addr_compression::CompressionEngine;
use cmp_common::snapshot::Snapshot;
use cmp_common::types::{Addr, Cycle, MessageClass, TileId};
use coherence::l1::L1Cache;
use coherence::l2::L2Slice;
use cpu_model::core::Core;

use super::clocked::Clocked;
use crate::niface::ResyncTracker;

/// One tile's network interface: the sender-side compression hardware of
/// the proposal (Section 4.3) plus its resynchronisation bookkeeping and
/// any passive coverage probes riding the same address stream.
#[derive(Clone)]
pub struct NetIface {
    /// The live codec deciding each message's wire size.
    pub(crate) codec: CompressionEngine,
    /// Passive observers, one per probed scheme (Figure 2 measures all
    /// schemes in a single run); they never influence the wire.
    pub(crate) probes: Vec<CompressionEngine>,
    /// Codec-resynchronisation windows (consulted only when the fault
    /// subsystem is live).
    pub(crate) tracker: ResyncTracker,
}

cmp_common::impl_snapshot_clone!(NetIface);

impl NetIface {
    /// Size a remote message on the wire: probes observe the address,
    /// divergence handling may force an uncompressed fallback, otherwise
    /// the codec compresses. `faults_live` gates the divergence path so
    /// the clean run pays a single branch.
    pub(crate) fn wire_size(
        &mut self,
        now: Cycle,
        dst: TileId,
        class: MessageClass,
        line: Addr,
        faults_live: bool,
    ) -> usize {
        for probe in &mut self.probes {
            probe.process(dst, class, line);
        }
        // Codec-divergence handling: a pair whose receiver mirror has
        // diverged is detected via the sequence/checksum tag at the next
        // compressible send; detection resets the sender codec, opens the
        // resynchronisation window and falls back to uncompressed B-Wire
        // transmission for the window's duration.
        let mut fallback = false;
        if faults_live {
            if self.tracker.in_window(now, dst, class) {
                fallback = true;
            } else if self.codec.divergence(dst, class) {
                self.codec.resync(dst, class);
                self.tracker.begin_resync(now, dst, class);
                // the detecting message itself rides uncompressed
                fallback = self.tracker.in_window(now, dst, class);
            }
        }
        if fallback {
            class.uncompressed_bytes()
        } else {
            self.codec.process(dst, class, line).wire_bytes
        }
    }
}

/// One tile: trace-driven core, private L1 controller and the network
/// interface that compresses its outbound coherence traffic.
#[derive(Clone)]
pub struct Tile {
    /// The in-order core consuming this tile's trace.
    pub(crate) core: Core,
    /// The private-cache (MESI L1) controller.
    pub(crate) l1: L1Cache,
    /// The compression/resync network interface.
    pub(crate) ni: NetIface,
    /// Parked at the current barrier epoch.
    pub(crate) parked: bool,
}

cmp_common::impl_snapshot_clone!(Tile);

impl Clocked for Tile {
    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        self.core.ready_at()
    }

    fn is_quiescent(&self) -> bool {
        self.core.is_done()
    }
}

/// One bank of the shared NUCA L2 (home slice + full-map directory),
/// with its busy flag cached so the engine's completion check stays O(1).
#[derive(Clone)]
pub struct L2Bank {
    /// The home-slice controller.
    pub(crate) slice: L2Slice,
    /// Mirror of `!slice.is_quiescent()`, kept by [`L2Bank::sync`].
    pub(crate) busy: bool,
}

cmp_common::impl_snapshot_clone!(L2Bank);

impl L2Bank {
    /// Re-cache the busy flag after the slice handled work. Returns the
    /// change in busy-bank count (−1, 0 or +1) for the engine's counter.
    pub(crate) fn sync(&mut self) -> i32 {
        let busy = !self.slice.is_quiescent();
        if busy == self.busy {
            return 0;
        }
        self.busy = busy;
        if busy {
            1
        } else {
            -1
        }
    }
}

impl Clocked for L2Bank {
    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Banks are reactive: they act only when a message or fill
        // arrives, so they never bound the fast-forward jump.
        None
    }

    fn is_quiescent(&self) -> bool {
        !self.busy
    }
}

use cmp_common::persist::{save_state_slice, ByteReader, ByteWriter, PersistError, PersistState};

impl PersistState for NetIface {
    fn save_state(&self, w: &mut ByteWriter) {
        self.codec.save_state(w);
        save_state_slice(&self.probes, w);
        self.tracker.save_state(w);
    }
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError> {
        self.codec.load_state(r)?;
        cmp_common::persist::load_state_slice(&mut self.probes, r)?;
        self.tracker.load_state(r)
    }
}

impl PersistState for Tile {
    fn save_state(&self, w: &mut ByteWriter) {
        self.core.save_state(w);
        self.l1.save_state(w);
        self.ni.save_state(w);
        w.bool(self.parked);
    }
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError> {
        self.core.load_state(r)?;
        self.l1.load_state(r)?;
        self.ni.load_state(r)?;
        self.parked = r.bool()?;
        Ok(())
    }
}

impl PersistState for L2Bank {
    fn save_state(&self, w: &mut ByteWriter) {
        self.slice.save_state(w);
        w.bool(self.busy);
    }
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError> {
        self.slice.load_state(r)?;
        self.busy = r.bool()?;
        Ok(())
    }
}

/// Capture a row of components via their per-component snapshots.
pub(crate) fn snapshot_all<T: Snapshot>(items: &[T]) -> Vec<T::State> {
    items.iter().map(Snapshot::snapshot).collect()
}

/// Restore a row of components from their captured states.
pub(crate) fn restore_all<T: Snapshot>(items: &mut [T], states: &[T::State]) {
    assert_eq!(
        items.len(),
        states.len(),
        "snapshot shape does not match this machine"
    );
    for (item, state) in items.iter_mut().zip(states) {
        item.restore(state);
    }
}
