//! Whole-machine checkpointing: capture every mutable component at an
//! iteration boundary and resume bit-identically.
//!
//! A [`MachineSnapshot`] is the composition of the per-component
//! [`Snapshot`] states — tiles (core + L1 + network interface), L2
//! banks, NoC, memory controller, barrier, event calendar — plus the
//! engine's own cached counters and the robustness layer's seeded
//! state (fault injector RNG, sanitizer sweep count). Restoring into a
//! simulator built from the same configuration reproduces the exact
//! machine state, so a restored run's remaining schedule is
//! bit-identical to the uncheckpointed original: same cycles, same
//! message counts, same energy.
//!
//! Snapshots are taken between scheduler iterations (the only boundary
//! the public API exposes), where the scratch buffers are empty by
//! construction — nothing transient needs to be captured.

use cmp_common::fault::FaultInjector;
use cmp_common::snapshot::Snapshot;
use cmp_common::types::Cycle;
use coherence::memctrl::MemCtrl;
use coherence::msg::ProtocolMsg;
use coherence::sanitizer::Sanitizer;
use cpu_model::sync::BarrierState;
use mesh_noc::Noc;

use super::calendar::Calendar;
use super::tile::{restore_all, snapshot_all, L2Bank, Tile};
use super::watchdog::Watchdog;
use super::Engine;

/// A checkpoint of the whole machine at an iteration boundary.
///
/// Opaque by design: the only supported operations are
/// [`crate::sim::CmpSimulator::snapshot`],
/// [`crate::sim::CmpSimulator::restore`] and [`MachineSnapshot::cycle`].
#[derive(Clone)]
pub struct MachineSnapshot {
    pub(crate) now: Cycle,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) l2s: Vec<L2Bank>,
    pub(crate) noc: Noc<ProtocolMsg>,
    pub(crate) mem: MemCtrl,
    pub(crate) barrier: BarrierState,
    pub(crate) calendar: Calendar,
    pub(crate) cores_unfinished: usize,
    pub(crate) busy_l2_count: usize,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) sanitizer: Option<Sanitizer>,
    pub(crate) next_sweep: Cycle,
    pub(crate) watchdog: Option<Watchdog>,
    pub(crate) iters: u64,
}

impl MachineSnapshot {
    /// The cycle at which the checkpoint was taken.
    pub fn cycle(&self) -> Cycle {
        self.now
    }

    /// Number of tiles in the captured machine.
    pub fn tiles(&self) -> usize {
        self.tiles.len()
    }
}

impl Snapshot for Engine {
    type State = MachineSnapshot;

    fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            now: self.now,
            tiles: snapshot_all(&self.tiles),
            l2s: snapshot_all(&self.l2s),
            noc: self.noc.snapshot(),
            mem: self.mem.snapshot(),
            barrier: self.barrier.snapshot(),
            calendar: self.calendar.snapshot(),
            cores_unfinished: self.cores_unfinished,
            busy_l2_count: self.busy_l2_count,
            injector: self.injector.clone(),
            sanitizer: self.sanitizer.clone(),
            next_sweep: self.next_sweep,
            watchdog: self.watchdog.clone(),
            iters: self.iters,
        }
    }

    fn restore(&mut self, state: &MachineSnapshot) {
        self.now = state.now;
        restore_all(&mut self.tiles, &state.tiles);
        restore_all(&mut self.l2s, &state.l2s);
        self.noc.restore(&state.noc);
        self.mem.restore(&state.mem);
        self.barrier.restore(&state.barrier);
        self.calendar.restore(&state.calendar);
        self.cores_unfinished = state.cores_unfinished;
        self.busy_l2_count = state.busy_l2_count;
        self.injector = state.injector.clone();
        self.sanitizer = state.sanitizer.clone();
        self.next_sweep = state.next_sweep;
        self.watchdog = state.watchdog.clone();
        self.iters = state.iters;
        // Scratch buffers are empty at every iteration boundary; clear
        // them anyway so a restore from any state is self-consistent.
        self.delivered_scratch.clear();
        self.due_scratch.clear();
    }
}
