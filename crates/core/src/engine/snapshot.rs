//! Whole-machine checkpointing: capture every mutable component at an
//! iteration boundary and resume bit-identically.
//!
//! A [`MachineSnapshot`] is the composition of the per-component
//! [`Snapshot`] states — tiles (core + L1 + network interface), L2
//! banks, NoC, memory controller, barrier, event calendar — plus the
//! engine's own cached counters and the robustness layer's seeded
//! state (fault injector RNG, sanitizer sweep count). Restoring into a
//! simulator built from the same configuration reproduces the exact
//! machine state, so a restored run's remaining schedule is
//! bit-identical to the uncheckpointed original: same cycles, same
//! message counts, same energy.
//!
//! Snapshots are taken between scheduler iterations (the only boundary
//! the public API exposes), where the scratch buffers are empty by
//! construction — nothing transient needs to be captured.

use cmp_common::config::DirectoryConfig;
use cmp_common::fault::FaultInjector;
use cmp_common::hash::Fnv64;
use cmp_common::snapshot::Snapshot;
use cmp_common::types::{Cycle, TileId};
use coherence::memctrl::MemCtrl;
use coherence::msg::ProtocolMsg;
use coherence::sanitizer::Sanitizer;
use cpu_model::sync::BarrierState;
use mesh_noc::Noc;

use super::calendar::Calendar;
use super::tile::{restore_all, snapshot_all, L2Bank, Tile};
use super::watchdog::Watchdog;
use super::Engine;

/// A checkpoint of the whole machine at an iteration boundary.
///
/// Opaque by design: the only supported operations are
/// [`crate::sim::CmpSimulator::snapshot`],
/// [`crate::sim::CmpSimulator::restore`] and [`MachineSnapshot::cycle`].
#[derive(Clone)]
pub struct MachineSnapshot {
    pub(crate) now: Cycle,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) l2s: Vec<L2Bank>,
    pub(crate) noc: Noc<ProtocolMsg>,
    pub(crate) mem: MemCtrl,
    pub(crate) barrier: BarrierState,
    pub(crate) calendar: Calendar,
    pub(crate) cores_unfinished: usize,
    pub(crate) busy_l2_count: usize,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) sanitizer: Option<Sanitizer>,
    pub(crate) next_sweep: Cycle,
    pub(crate) watchdog: Option<Watchdog>,
    pub(crate) iters: u64,
}

/// Why a [`MachineSnapshot`] refuses to restore into a simulator: the
/// snapshot's machine shape must match, including the directory
/// organisation the L2 slices were captured with — transplanting
/// sparse-directory state into a full-map machine (or vice versa) would
/// silently swap the simulator's capacity-metering semantics mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot captured a machine with a different tile count.
    TileCountMismatch {
        /// Tiles in the simulator being restored into.
        simulator: usize,
        /// Tiles in the captured machine.
        snapshot: usize,
    },
    /// The snapshot captured L2 slices running a different directory
    /// representation.
    DirectoryMismatch {
        /// Organisation the simulator was configured with.
        simulator: DirectoryConfig,
        /// Organisation the snapshot was captured under.
        snapshot: DirectoryConfig,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::TileCountMismatch {
                simulator,
                snapshot,
            } => write!(
                f,
                "snapshot captured a {snapshot}-tile machine but this simulator has \
                 {simulator} tiles"
            ),
            RestoreError::DirectoryMismatch {
                simulator,
                snapshot,
            } => write!(
                f,
                "snapshot captured {} directory state but this simulator runs a {} \
                 directory; rebuild the simulator with a matching `CmpConfig::directory`",
                snapshot.label(),
                simulator.label()
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl MachineSnapshot {
    /// The cycle at which the checkpoint was taken.
    pub fn cycle(&self) -> Cycle {
        self.now
    }

    /// Number of tiles in the captured machine.
    pub fn tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Directory organisation the captured L2 slices were running.
    pub fn directory_config(&self) -> DirectoryConfig {
        self.l2s
            .first()
            .map(|b| b.slice.directory_config())
            .unwrap_or(DirectoryConfig::FullMap)
    }

    /// Content digest of the captured machine (FNV-1a 64 in a fixed
    /// field order).
    ///
    /// The checkpoint cache records this at store time and recomputes
    /// it at load time, so a checkpoint that was mutated in between —
    /// torn, bit-rotted, or deliberately corrupted by a test — is
    /// detected and quarantined instead of fast-forwarding a cell into
    /// wrong numbers. The digest walks the schedule-bearing state:
    /// clocks and cached counters, every core's architectural
    /// description and retirement stats, L1 MSHR and L2 transaction
    /// lines, in-flight NoC and calendar event counts, and each
    /// outstanding memory read. Deterministic across platforms; not
    /// cryptographic (it guards against corruption, not an adversary).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.now);
        h.write_u64(self.iters);
        h.write_u64(self.cores_unfinished as u64);
        h.write_u64(self.busy_l2_count as u64);
        h.write_u64(self.next_sweep);
        for t in &self.tiles {
            h.write_str(&t.core.describe());
            h.write_u64(t.core.stats().instructions);
            h.write_u64(t.core.stats().mem_ops);
            h.write_u64(t.core.ready_at().unwrap_or(Cycle::MAX));
            h.write_u64(u64::from(t.parked));
            // MSHRs and the L2 transaction maps iterate in a
            // deterministic order that survives save/load (dense
            // vectors and `AddrMap`'s insertion-history order), so the
            // digest walks them directly — no defensive copy-and-sort.
            for line in t.l1.mshr_lines() {
                h.write_u64(line);
            }
        }
        for b in &self.l2s {
            h.write_u64(u64::from(b.busy));
            for (line, state) in b.slice.busy_lines() {
                h.write_u64(line);
                h.write_str(&state);
            }
            for line in b.slice.fill_lines() {
                h.write_u64(line);
            }
            h.write_u64(b.slice.queued_requests() as u64);
        }
        h.write_u64(self.noc.live_messages() as u64);
        h.write_u64(self.noc.held_count() as u64);
        h.write_u64(self.mem.outstanding() as u64);
        for r in self.mem.outstanding_reads() {
            h.write_u64(r.tile.index() as u64);
            h.write_u64(r.line);
            h.write_u64(r.ready_at);
        }
        h.write_u64(self.calendar.delayed_len() as u64);
        h.write_u64(self.calendar.next_delayed().unwrap_or(Cycle::MAX));
        h.write_u64(u64::from(self.barrier.epoch()));
        h.write_u64(
            self.injector
                .as_ref()
                .map_or(u64::MAX, |i| i.stats().total()),
        );
        h.finish()
    }

    /// Deliberately perturb the captured state — invent a phantom
    /// outstanding memory read, the kind of deep machine state a torn
    /// checkpoint would plausibly lose or duplicate — so the cache's
    /// load-time verification has something real to catch. Test and
    /// campaign hook; never called on the clean path.
    #[doc(hidden)]
    pub fn fault_corrupt(&mut self) {
        self.mem.read(self.now, TileId(0), 0xDEAD_C0DE << 6);
    }

    /// Encode the captured machine as bytes (the disk-spill payload).
    ///
    /// Only mutable state is written: a matching [`MachineSnapshot::load_bytes`]
    /// always runs on a *template* snapshot taken from a freshly built
    /// simulator of the identical configuration (the cache's warm key
    /// fingerprints the full config), so immutable structure — mesh shape,
    /// codec schemes, latencies — never hits disk and every
    /// trait-object component loads its state in place.
    pub fn save_bytes(&self) -> Vec<u8> {
        use cmp_common::persist::PersistState;
        let mut w = cmp_common::persist::ByteWriter::new();
        self.save_state(&mut w);
        w.into_bytes()
    }

    /// Overwrite this (template) snapshot from [`MachineSnapshot::save_bytes`]
    /// output. Corrupt or truncated input — including bytes captured from
    /// a machine of a different shape or arming — is a structured error,
    /// never a panic and never a silently inconsistent machine.
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<(), cmp_common::persist::PersistError> {
        use cmp_common::persist::PersistState;
        let mut r = cmp_common::persist::ByteReader::new(bytes);
        self.load_state(&mut r)?;
        r.finish()
    }
}

impl cmp_common::persist::PersistState for MachineSnapshot {
    fn save_state(&self, w: &mut cmp_common::persist::ByteWriter) {
        use cmp_common::persist::{save_state_slice, Persist};
        w.u64(self.now);
        save_state_slice(&self.tiles, w);
        save_state_slice(&self.l2s, w);
        self.noc.save_state(w);
        self.mem.save_state(w);
        self.barrier.save_state(w);
        self.calendar.save_state(w);
        self.cores_unfinished.save(w);
        self.busy_l2_count.save(w);
        // Optional robustness components: presence is *arming shape* (a
        // config decision), their contents are state.
        w.bool(self.injector.is_some());
        if let Some(inj) = &self.injector {
            inj.save_state(w);
        }
        w.bool(self.sanitizer.is_some());
        if let Some(s) = &self.sanitizer {
            s.save_state(w);
        }
        w.u64(self.next_sweep);
        w.bool(self.watchdog.is_some());
        if let Some(wd) = &self.watchdog {
            wd.save_state(w);
        }
        w.u64(self.iters);
    }
    fn load_state(
        &mut self,
        r: &mut cmp_common::persist::ByteReader,
    ) -> Result<(), cmp_common::persist::PersistError> {
        use cmp_common::persist::{load_state_slice, Persist};
        self.now = r.u64()?;
        load_state_slice(&mut self.tiles, r)?;
        load_state_slice(&mut self.l2s, r)?;
        self.noc.load_state(r)?;
        self.mem.load_state(r)?;
        self.barrier.load_state(r)?;
        self.calendar.load_state(r)?;
        self.cores_unfinished = Persist::load(r)?;
        self.busy_l2_count = Persist::load(r)?;
        if r.bool()? != self.injector.is_some() {
            return Err(r.err("fault injector arming does not match machine shape"));
        }
        if let Some(inj) = &mut self.injector {
            inj.load_state(r)?;
        }
        if r.bool()? != self.sanitizer.is_some() {
            return Err(r.err("sanitizer arming does not match machine shape"));
        }
        if let Some(s) = &mut self.sanitizer {
            s.load_state(r)?;
        }
        self.next_sweep = r.u64()?;
        if r.bool()? != self.watchdog.is_some() {
            return Err(r.err("watchdog arming does not match machine shape"));
        }
        if let Some(wd) = &mut self.watchdog {
            wd.load_state(r)?;
        }
        self.iters = r.u64()?;
        if self.cores_unfinished > self.tiles.len() {
            return Err(r.err("unfinished core count exceeds machine size"));
        }
        if self.busy_l2_count > self.l2s.len() {
            return Err(r.err("busy L2 count exceeds machine size"));
        }
        Ok(())
    }
}

impl Engine {
    /// Restore after checking the snapshot actually fits this machine:
    /// same tile count and same directory organisation. The structured
    /// [`RestoreError`] replaces what would otherwise be a silent
    /// representation transplant.
    pub fn try_restore(&mut self, state: &MachineSnapshot) -> Result<(), RestoreError> {
        if state.tiles.len() != self.tiles.len() {
            return Err(RestoreError::TileCountMismatch {
                simulator: self.tiles.len(),
                snapshot: state.tiles.len(),
            });
        }
        let snap_dir = state.directory_config();
        if snap_dir != self.cfg.cmp.directory {
            return Err(RestoreError::DirectoryMismatch {
                simulator: self.cfg.cmp.directory,
                snapshot: snap_dir,
            });
        }
        self.restore(state);
        Ok(())
    }
}

impl Snapshot for Engine {
    type State = MachineSnapshot;

    fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            now: self.now,
            tiles: snapshot_all(&self.tiles),
            l2s: snapshot_all(&self.l2s),
            noc: self.noc.snapshot(),
            mem: self.mem.snapshot(),
            barrier: self.barrier.snapshot(),
            calendar: self.calendar.snapshot(),
            cores_unfinished: self.cores_unfinished,
            busy_l2_count: self.busy_l2_count,
            injector: self.injector.clone(),
            sanitizer: self.sanitizer.clone(),
            next_sweep: self.next_sweep,
            watchdog: self.watchdog.clone(),
            iters: self.iters,
        }
    }

    fn restore(&mut self, state: &MachineSnapshot) {
        self.now = state.now;
        restore_all(&mut self.tiles, &state.tiles);
        restore_all(&mut self.l2s, &state.l2s);
        self.noc.restore(&state.noc);
        self.mem.restore(&state.mem);
        self.barrier.restore(&state.barrier);
        self.calendar.restore(&state.calendar);
        self.cores_unfinished = state.cores_unfinished;
        self.busy_l2_count = state.busy_l2_count;
        self.injector = state.injector.clone();
        self.sanitizer = state.sanitizer.clone();
        self.next_sweep = state.next_sweep;
        self.watchdog = state.watchdog.clone();
        self.iters = state.iters;
        // Scratch buffers are empty at every iteration boundary; clear
        // them anyway so a restore from any state is self-consistent.
        self.delivered_scratch.clear();
        self.due_scratch.clear();
    }
}
