//! The shared clocking seam: every engine component answers the two
//! questions the scheduler asks each iteration.
//!
//! The main loop fast-forwards over idle stretches by jumping straight to
//! the earliest cycle *any* component can act ([`Clocked::next_event`])
//! and terminates when *every* component reports quiescence
//! ([`Clocked::is_quiescent`]). Components answer in O(1) from cached
//! counters — the scheduler never scans internal queues.

use cmp_common::types::Cycle;
use coherence::memctrl::MemCtrl;
use coherence::msg::ProtocolMsg;
use mesh_noc::Noc;

/// A component sharing the engine's 4 GHz clock.
pub trait Clocked {
    /// Earliest cycle at/after `now` this component can make progress on
    /// its own (`None` when it is waiting on external input or done).
    fn next_event(&self, now: Cycle) -> Option<Cycle>;

    /// Whether the component holds no in-flight work. The run is complete
    /// when every component is quiescent and all traces have retired.
    fn is_quiescent(&self) -> bool;
}

impl Clocked for Noc<ProtocolMsg> {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.next_event_cycle(now)
    }

    fn is_quiescent(&self) -> bool {
        self.is_idle()
    }
}

impl Clocked for MemCtrl {
    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        self.next_ready()
    }

    fn is_quiescent(&self) -> bool {
        self.outstanding() == 0
    }
}
