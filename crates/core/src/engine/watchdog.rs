//! Forward-progress watchdog: catch livelocks long before the cycle cap.
//!
//! A deadlocked machine (no schedulable event at all) is caught
//! immediately by the scheduler's next-event check. A *livelocked*
//! machine is worse: something keeps generating events — typically a
//! core re-offering a blocked access every cycle while the fills that
//! would unblock it are lost — so the clock advances one cycle per
//! iteration until `max_cycles`, which at the 2-billion-cycle default is
//! hours of wasted wall-clock per cell.
//!
//! The watchdog monitors the two counters that define useful work: total
//! instructions retired across all cores and total messages delivered by
//! the NoC. It counts **scheduler iterations** rather than raw cycles:
//! each iteration advances the clock by at least one cycle, so a stall
//! of N iterations is a stall of ≥ N cycles, while a healthy fast-forward
//! over a multi-million-cycle compute burst is a single iteration and can
//! never trip it. When neither counter moves for
//! [`WatchdogConfig::stall_iterations`] iterations, the engine aborts
//! with [`super::SimError::NoForwardProgress`] carrying per-tile stall
//! diagnostics instead of spinning to the cap.
//!
//! Observation is read-only and runs every `stall_iterations / 4`
//! iterations, so the clean-path overhead is one counter increment and
//! one compare per iteration.

use cmp_common::types::Cycle;

/// Watchdog policy knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Scheduler iterations (each advances the clock ≥ 1 cycle) with no
    /// instruction retired and no message delivered before the run is
    /// declared livelocked.
    pub stall_iterations: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_iterations: 2_000_000,
        }
    }
}

/// The monitor itself: last-observed progress counters plus the
/// iteration/cycle coordinates of the most recent observed progress.
#[derive(Clone, Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    check_period: u64,
    next_check: u64,
    last_progress_iter: u64,
    last_progress_cycle: Cycle,
    last_instructions: u64,
    last_delivered: u64,
}

impl Watchdog {
    /// A fresh monitor that first checks one period into the run.
    pub fn new(cfg: WatchdogConfig) -> Self {
        let check_period = (cfg.stall_iterations / 4).max(1);
        Watchdog {
            cfg,
            check_period,
            next_check: check_period,
            last_progress_iter: 0,
            last_progress_cycle: 0,
            last_instructions: 0,
            last_delivered: 0,
        }
    }

    /// Whether the (cheap) per-iteration gate says a full observation is
    /// due.
    #[inline]
    pub fn check_due(&self, iter: u64) -> bool {
        iter >= self.next_check
    }

    /// Full observation at iteration `iter`, cycle `now`: compare the
    /// progress counters against the last observation. Returns
    /// `Some(stalled_for_cycles)` when the stall budget is exhausted.
    pub fn observe(
        &mut self,
        iter: u64,
        now: Cycle,
        instructions: u64,
        delivered: u64,
    ) -> Option<Cycle> {
        self.next_check = iter + self.check_period;
        if instructions != self.last_instructions || delivered != self.last_delivered {
            self.last_instructions = instructions;
            self.last_delivered = delivered;
            self.last_progress_iter = iter;
            self.last_progress_cycle = now;
            return None;
        }
        if iter - self.last_progress_iter >= self.cfg.stall_iterations {
            return Some(now.saturating_sub(self.last_progress_cycle));
        }
        None
    }
}

/// The config (and the period derived from it) is configuration; the
/// observation coordinates are state.
impl cmp_common::persist::PersistState for Watchdog {
    fn save_state(&self, w: &mut cmp_common::persist::ByteWriter) {
        w.u64(self.next_check);
        w.u64(self.last_progress_iter);
        w.u64(self.last_progress_cycle);
        w.u64(self.last_instructions);
        w.u64(self.last_delivered);
    }
    fn load_state(
        &mut self,
        r: &mut cmp_common::persist::ByteReader,
    ) -> Result<(), cmp_common::persist::PersistError> {
        self.next_check = r.u64()?;
        self.last_progress_iter = r.u64()?;
        self.last_progress_cycle = r.u64()?;
        self.last_instructions = r.u64()?;
        self.last_delivered = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd(stall: u64) -> Watchdog {
        Watchdog::new(WatchdogConfig {
            stall_iterations: stall,
        })
    }

    #[test]
    fn advancing_counters_never_trip() {
        let mut w = wd(100);
        for i in 0..10_000u64 {
            if w.check_due(i) {
                // instructions move every observation
                assert_eq!(w.observe(i, i, i, 0), None);
            }
        }
    }

    #[test]
    fn frozen_counters_trip_after_the_budget() {
        let mut w = wd(100);
        assert_eq!(w.observe(0, 0, 42, 7), None, "first observation baselines");
        let mut fired = None;
        for i in 1..1_000u64 {
            if w.check_due(i) {
                if let Some(stalled) = w.observe(i, i * 3, 42, 7) {
                    fired = Some((i, stalled));
                    break;
                }
            }
        }
        let (iter, stalled) = fired.expect("watchdog must fire");
        assert!(iter >= 100, "not before the budget (fired at {iter})");
        assert!(iter <= 200, "within two check periods (fired at {iter})");
        assert_eq!(stalled, iter * 3, "stall reported in cycles");
    }

    #[test]
    fn delivery_progress_counts_without_retirement() {
        let mut w = wd(50);
        for i in 0..5_000u64 {
            if w.check_due(i) {
                // retirement frozen, but the NoC keeps delivering
                assert_eq!(w.observe(i, i, 0, i), None);
            }
        }
    }

    #[test]
    fn fast_forward_jumps_do_not_trip() {
        let mut w = wd(100);
        assert_eq!(w.observe(0, 0, 5, 5), None);
        // one iteration later the clock has jumped 10M cycles (a compute
        // burst): counters frozen, but only 1 iteration has elapsed
        assert_eq!(w.observe(26, 10_000_000, 5, 5), None);
    }

    #[test]
    fn check_gate_has_the_configured_cadence() {
        let w = wd(400);
        assert!(!w.check_due(99));
        assert!(w.check_due(100));
    }
}
