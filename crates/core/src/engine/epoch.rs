//! The epoch scheduler: deterministic intra-simulation parallelism.
//!
//! One scheduler iteration drains everything due at the current cycle
//! (memory fills, delayed protocol sends, network deliveries, core
//! steps). The epoch scheduler partitions that per-cycle work across a
//! pool of worker threads by owner tile, runs the *collect* half of each
//! item on its owner's thread — mutating only tile-local state and
//! recording every cross-tile side effect in an [`Fx`] slot — then merges
//! the slots **serially, in exactly the order the serial engine would
//! have produced them**: cycle first (the scheduler only ever works on
//! one cycle at a time), then the phase's own deterministic item order
//! (memory-fill pop order, delayed-event `(cycle, seq)` order, delivery
//! drain order, ascending tile id for cores).
//!
//! # Why per-cycle epochs are safe (the lookahead bound)
//!
//! Conservative parallel discrete-event simulation needs a *lookahead*: a
//! lower bound on how far apart cause and cross-partition effect must be.
//! Here every cross-tile interaction travels either through the event
//! calendar (delayed at least until the next scheduler iteration — the
//! calendar clamps events to `now + 1` or later) or through the NoC,
//! whose minimum zero-load one-hop latency is
//! `2·(router_pipeline − 1) + link_cycles` per sub-network, and at least
//! one cycle even for the single-stage express routers
//! ([`lookahead_window`] computes the minimum across the configured
//! channels once, from the `NocConfig`). Nothing a tile does at cycle
//! `t` can influence another tile at cycle `t`, so all per-tile work due
//! at one cycle is independent and an epoch of one "interesting" cycle —
//! the finest grain the lookahead permits — can fan out across
//! partitions. The barrier at the end of each phase is the epoch
//! boundary; snapshots are only taken between iterations, i.e. exactly
//! at epoch boundaries, which is why a snapshot from a 1-thread run
//! restores losslessly into an 8-thread engine and vice versa.
//!
//! # Why the result is bit-identical for every thread count
//!
//! The serial path and the parallel path share the same collect
//! functions ([`mem_fill_into`], [`fire_into`], [`deliver_into`],
//! [`step_core_into`]) and the same apply functions on the engine; the
//! only difference is *where* collect runs. Because collect touches only
//! its owner tile's state and the apply merge replays side effects in
//! the serial order, the machine state after every iteration is
//! identical by construction — including f64 energy totals, which the
//! NoC keeps in per-sub-network accumulators summed in fixed order.
//!
//! The worker pool is built from `std` only (no rayon/crossbeam): a
//! generation-counter job board with spin-then-yield-then-park waiting,
//! sized by [`super::SimConfig::sim_threads`].

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use cmp_common::types::{Cycle, TileId};
use coherence::l1::{CoreAccess, L1Result};
use coherence::memctrl::MemRead;
use coherence::msg::{Outgoing, PKind, ProtocolMsg};
use coherence::ProtocolError;
use cpu_model::core::Action;
use mesh_noc::config::NocConfig;
use mesh_noc::message::{Delivered, Message};

use crate::niface::{map_channel, InterconnectChoice};

use super::calendar::DelayedEvent;
use super::tile::{L2Bank, Tile};

/// Minimum items in a phase before it fans out to the pool: below this
/// the fork-join handshake costs more than the work, so the iteration
/// collects inline on the caller thread (same functions, same order —
/// the results are identical either way, only the wall clock differs).
pub(crate) const PAR_MIN_ITEMS: usize = 8;

/// The conservative lookahead window of `cfg`, in cycles: the minimum
/// zero-load one-hop latency across the configured sub-networks,
/// `min over channels of 2·(router_pipeline − 1) + link_cycles`, clamped
/// to at least one cycle. This is the bound that makes per-cycle epochs
/// safe: no tile can affect another tile sooner than this many cycles
/// after a send, so work due at a single cycle is cross-tile independent.
pub fn lookahead_window(cfg: &NocConfig) -> Cycle {
    cfg.channels
        .iter()
        .map(|c| {
            let link = c.channel.timing(cfg.clock_hz).cycles;
            2 * (c.router_pipeline_cycles - 1) + link
        })
        .min()
        .unwrap_or(1)
        .max(1)
}

// ---------------------------------------------------------------------
// Effect slots
// ---------------------------------------------------------------------

/// Side effects of one collected work item, replayed at the merge. All
/// buffers keep their capacity across [`Fx::reset`], so steady state
/// allocates nothing.
#[derive(Default)]
pub(crate) struct Fx {
    /// Controller side effects to route through the owner's ports.
    pub(crate) outs: Vec<Outgoing>,
    /// Compressed, channel-mapped messages bound for the NoC (remote
    /// delayed sends only), in send order.
    pub(crate) msgs: Vec<Message<ProtocolMsg>>,
    /// The owner's L2 bank handled work (re-sync its busy flag).
    pub(crate) bank_touched: bool,
    /// The owner's core finished a miss (refresh its ready cycle).
    pub(crate) refresh: bool,
    /// The owner's core retired its last instruction during this step.
    pub(crate) finished: bool,
    /// The owner's core arrived at this barrier (arrival is replayed at
    /// the merge, in deterministic order).
    pub(crate) barrier: Option<u32>,
    /// Protocol rejection raised during collect (reported at the merge,
    /// first in deterministic order wins).
    pub(crate) error: Option<ProtocolError>,
}

impl Fx {
    /// Clear for reuse, keeping buffer capacity.
    pub(crate) fn reset(&mut self) {
        self.outs.clear();
        self.msgs.clear();
        self.bank_touched = false;
        self.refresh = false;
        self.finished = false;
        self.barrier = None;
        self.error = None;
    }
}

// ---------------------------------------------------------------------
// Collect functions (shared by the serial and parallel paths)
// ---------------------------------------------------------------------

/// Collect half of a memory-fill completion: the L2 slice absorbs the
/// fill and is pumped; its side effects land in `fx`.
pub(crate) fn mem_fill_into(
    bank: &mut L2Bank,
    line: cmp_common::types::Addr,
    fx: &mut Fx,
) -> Result<(), ProtocolError> {
    let outs = bank.slice.mem_fill_done(line)?;
    fx.outs.extend_from_slice(&outs);
    let pumped = bank.slice.pump()?;
    fx.outs.extend_from_slice(&pumped);
    fx.bank_touched = true;
    Ok(())
}

/// Collect half of a protocol delivery to `dst`'s tile/bank (the
/// destination-side work of phase 3, and of local delayed sends).
pub(crate) fn deliver_into(
    tile: &mut Tile,
    bank: &mut L2Bank,
    now: Cycle,
    src: TileId,
    msg: ProtocolMsg,
    fx: &mut Fx,
) -> Result<(), ProtocolError> {
    match msg.kind {
        PKind::GetS | PKind::GetX | PKind::Upgrade => {
            let outs = bank.slice.handle_request(src, msg.kind, msg.line)?;
            fx.outs.extend_from_slice(&outs);
            let pumped = bank.slice.pump()?;
            fx.outs.extend_from_slice(&pumped);
            fx.bank_touched = true;
        }
        PKind::InvAck
        | PKind::FwdFailed
        | PKind::FwdDone
        | PKind::RevisionClean
        | PKind::RevisionDirty
        | PKind::RecallAckData
        | PKind::RecallAckClean => {
            let outs = bank.slice.handle_reply(src, msg.kind, msg.line)?;
            fx.outs.extend_from_slice(&outs);
            let pumped = bank.slice.pump()?;
            fx.outs.extend_from_slice(&pumped);
            fx.bank_touched = true;
        }
        PKind::WbData | PKind::WbHint => {
            let outs = bank.slice.handle_writeback(src, msg.kind, msg.line)?;
            fx.outs.extend_from_slice(&outs);
            let pumped = bank.slice.pump()?;
            fx.outs.extend_from_slice(&pumped);
            fx.bank_touched = true;
        }
        PKind::DataS
        | PKind::DataE
        | PKind::DataM
        | PKind::PartialReply { .. }
        | PKind::UpgradeAck
        | PKind::Inv
        | PKind::FwdGetS { .. }
        | PKind::FwdGetX { .. }
        | PKind::RecallData => {
            let (outs, done) = tile.l1.handle(msg)?;
            fx.outs.extend_from_slice(&outs);
            if done.is_some() {
                tile.core.mem_complete(now);
                fx.refresh = true;
            }
        }
    }
    Ok(())
}

/// Compress, channel-map and queue one outbound message in `fx` (the
/// sender-side NI work of a remote delayed send). Mutates only the
/// source tile's codec/probe/tracker state.
fn push_outbound(
    tile: &mut Tile,
    interconnect: InterconnectChoice,
    now: Cycle,
    ev: &DelayedEvent,
    msg: ProtocolMsg,
    fx: &mut Fx,
) {
    let class = msg.class();
    // The clean path never has faults live (the epoch scheduler is built
    // only when no fault injector is armed; the serial fault path keeps
    // the legacy `Engine::fire`).
    let wire_bytes = tile.ni.wire_size(now, ev.dst, class, msg.line, false);
    let channel = map_channel(interconnect, class, wire_bytes);
    fx.msgs.push(Message {
        src: ev.src,
        dst: ev.dst,
        class,
        wire_bytes,
        channel,
        payload: msg,
    });
}

/// Collect half of a delayed event firing, fault-free path: local events
/// are delivered in place; remote ones run the sender NI (compression,
/// reply splitting, channel mapping) and queue their messages in `fx`
/// for the merge to inject in deterministic order.
pub(crate) fn fire_into(
    tile: &mut Tile,
    bank: &mut L2Bank,
    interconnect: InterconnectChoice,
    drop_data_replies: bool,
    now: Cycle,
    ev: &DelayedEvent,
    fx: &mut Fx,
) -> Result<(), ProtocolError> {
    if ev.src == ev.dst {
        return deliver_into(tile, bank, now, ev.src, ev.msg, fx);
    }
    // Reply Partitioning: the critical partial reply precedes the
    // whole-line reply through the codec, exactly as in the serial path.
    if interconnect.splits_replies() {
        if let Some(of) = coherence::msg::PartialOf::of_kind(ev.msg.kind) {
            push_outbound(
                tile,
                interconnect,
                now,
                ev,
                ProtocolMsg::new(PKind::PartialReply { of }, ev.msg.line),
                fx,
            );
        }
    }
    // Livelock-reproducer hook (see `Engine::fault_drop_data_replies`).
    if drop_data_replies && matches!(ev.msg.kind, PKind::DataS | PKind::DataE | PKind::DataM) {
        return Ok(());
    }
    push_outbound(tile, interconnect, now, ev, ev.msg, fx);
    Ok(())
}

/// Collect half of stepping one core: run the core against its L1 until
/// it blocks, parks or idles. Barrier arrival is *recorded*, not applied
/// — the merge replays arrivals in ascending tile order so the release
/// sweep happens exactly where the serial engine put it.
pub(crate) fn step_core_into(tile: &mut Tile, now: Cycle, fx: &mut Fx) {
    let was_done = tile.core.is_done();
    loop {
        match tile.core.next_action(now) {
            Action::Access { line, write } => {
                let access = if write {
                    CoreAccess::Write
                } else {
                    CoreAccess::Read
                };
                match tile.l1.core_access(line, access) {
                    L1Result::Hit => {
                        tile.core.mem_hit(now);
                        // falls through: next_action will report Idle
                    }
                    L1Result::Miss { out } => {
                        tile.core.mem_miss_started(now);
                        fx.outs.extend_from_slice(&out);
                        break;
                    }
                    L1Result::Blocked => {
                        tile.core.mem_retry(now);
                        break;
                    }
                }
            }
            Action::AtBarrier(id) => {
                tile.parked = true;
                fx.barrier = Some(id);
                break;
            }
            Action::Idle { .. } | Action::Done => break,
        }
    }
    fx.finished = !was_done && tile.core.is_done();
}

// ---------------------------------------------------------------------
// Disjoint-index shards
// ---------------------------------------------------------------------

/// Raw-pointer view of a slice that hands out `&mut` to *disjoint*
/// indices across threads. The owner map makes disjointness static: item
/// `i` is touched only by worker `owner[i] % threads`, so no index is
/// reachable from two workers within one `WorkerPool::run`.
pub(crate) struct Shards<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is restricted to disjoint indices per thread (enforced
// by the deterministic owner map at every call site), so sharing the
// raw pointer across the pool's workers is sound.
unsafe impl<T: Send> Send for Shards<'_, T> {}
unsafe impl<T: Send> Sync for Shards<'_, T> {}

impl<'a, T> Shards<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        Shards {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    /// The caller must guarantee no other thread touches index `i` during
    /// this `WorkerPool::run` (the static owner map provides this).
    #[allow(clippy::mut_from_ref)] // disjointness is the caller contract
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// Type-erased job pointer: a borrowed `Fn(worker_index)` published to
/// the workers for the duration of one `run` call.
type JobPtr = *const (dyn Fn(usize) + Sync);

struct PoolShared {
    /// The current job; valid only between a generation bump and the
    /// matching completion count.
    job: UnsafeCell<Option<JobPtr>>,
    /// Bumped (Release) after `job` is written; workers Acquire-load it
    /// to pick up the new job.
    generation: AtomicU64,
    /// Workers that finished the current generation.
    done: AtomicUsize,
    shutdown: AtomicBool,
    panicked: AtomicBool,
}

// SAFETY: `job` is only written by the caller thread before the
// generation bump and only read by workers after Acquire-observing that
// bump; the caller does not reclaim the pointee until every worker has
// Release-incremented `done`. That handshake is the synchronisation.
unsafe impl Sync for PoolShared {}
// SAFETY: the raw job pointer is the only non-Send field and it is only
// dereferenced under the generation/done handshake above.
unsafe impl Send for PoolShared {}

/// A persistent pool of `threads − 1` workers (the caller is worker 0).
/// Jobs are borrowed closures dispatched by generation counter; waiting
/// workers spin briefly, yield, then park with a timeout — cheap when
/// work arrives every few microseconds, civilised when cores are scarce
/// (this also keeps a 1-core host from melting: parked workers cost one
/// wakeup, not a quantum of spinning).
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Worker thread handles for unparking, index-aligned with `joins`.
    threads: Vec<Thread>,
    joins: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool where `run` executes its job on `threads` workers total
    /// (including the calling thread). `threads` must be ≥ 2 — a pool of
    /// one is just the caller, which needs no pool.
    pub(crate) fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a 1-thread pool is the serial path");
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            generation: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        });
        let mut joins = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            let shared = Arc::clone(&shared);
            let join = std::thread::Builder::new()
                .name(format!("sim-worker-{w}"))
                .spawn(move || worker_loop(&shared, w))
                .expect("spawn simulation worker");
            joins.push(join);
        }
        let threads = joins.iter().map(|j| j.thread().clone()).collect();
        WorkerPool {
            shared,
            threads,
            joins,
        }
    }

    /// Total workers, including the caller.
    pub(crate) fn threads(&self) -> usize {
        self.joins.len() + 1
    }

    /// Run `f(worker_index)` on every worker (0 = the calling thread)
    /// and wait for all of them. Panics on any worker re-panic on the
    /// caller after the barrier.
    pub(crate) fn run<F: Fn(usize) + Sync>(&self, f: F) {
        let n = self.joins.len();
        let job: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the pointee outlives every dereference — `run` does not
        // return (and `f` is not dropped) until all `n` workers have
        // counted themselves done, and the slot is cleared right after.
        let ptr: JobPtr = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), JobPtr>(job) };
        unsafe { *self.shared.job.get() = Some(ptr) };
        self.shared.done.store(0, Ordering::Release);
        self.shared.generation.fetch_add(1, Ordering::Release);
        for t in &self.threads {
            t.unpark();
        }
        // The caller is worker 0; its share runs while the pool works.
        // Its panic is deferred past the barrier — the workers borrow the
        // closure, so it must stay alive until all of them are done.
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) != n {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        unsafe { *self.shared.job.get() = None };
        let worker_panicked = self.shared.panicked.swap(false, Ordering::AcqRel);
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("simulation worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.generation.fetch_add(1, Ordering::Release);
        for t in &self.threads {
            t.unpark();
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, idx: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for a new generation: spin briefly (job cadence in the hot
        // loop is microseconds), then yield, then park with a timeout as
        // a lost-wakeup backstop.
        let mut spins = 0u32;
        loop {
            let g = shared.generation.load(Ordering::Acquire);
            if g != seen {
                seen = g;
                break;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 128 {
                std::thread::yield_now();
            } else {
                std::thread::park_timeout(Duration::from_micros(200));
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the Acquire generation load synchronises with the
        // caller's Release bump, which happens after the job write.
        let job = unsafe { (*shared.job.get()).expect("job published before bump") };
        // SAFETY: the caller keeps the closure alive until `done` reaches
        // the worker count, which happens only after this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(idx) }));
        if result.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.done.fetch_add(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Per-engine parallel state
// ---------------------------------------------------------------------

/// Everything the parallel scheduler owns: the pool, the deterministic
/// tile→worker owner map, the lookahead bound, and reusable scratch.
/// Deliberately *not* part of [`super::snapshot::MachineSnapshot`]: a
/// snapshot captures the simulated machine, not the host-side execution
/// strategy, which is what lets a snapshot taken at `--sim-threads 1`
/// restore into a `--sim-threads 8` engine bit-identically.
pub(crate) struct ParState {
    pub(crate) pool: WorkerPool,
    /// `owner[tile] = tile % threads`: static, deterministic partition of
    /// tiles (with their L1s/NIs) and co-located L2 banks over workers.
    pub(crate) owner: Vec<u32>,
    /// Conservative cross-tile lookahead (cycles), from the NoC config.
    /// Always ≥ 1 — the bound that licenses per-cycle epochs.
    pub(crate) lookahead: Cycle,
    // --- reusable scratch (capacity persists across iterations) ---
    pub(crate) fills: Vec<MemRead>,
    pub(crate) events: Vec<DelayedEvent>,
    pub(crate) arrivals: Vec<Delivered<ProtocolMsg>>,
    pub(crate) due: Vec<u32>,
    pub(crate) outbound: Vec<Message<ProtocolMsg>>,
    pub(crate) slots: Vec<Fx>,
}

impl ParState {
    /// Build the parallel state for `tiles` tiles on `threads` workers
    /// (already clamped to ≥ 2 and ≤ tiles by the engine).
    pub(crate) fn new(threads: usize, tiles: usize, noc_cfg: &NocConfig) -> Self {
        let lookahead = lookahead_window(noc_cfg);
        debug_assert!(lookahead >= 1);
        ParState {
            pool: WorkerPool::new(threads),
            owner: (0..tiles).map(|t| (t % threads) as u32).collect(),
            lookahead,
            fills: Vec::new(),
            events: Vec::new(),
            arrivals: Vec::new(),
            due: Vec::new(),
            outbound: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Make sure at least `n` freshly-reset slots exist.
    pub(crate) fn ensure_slots(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, Fx::default);
        }
        for fx in &mut self.slots[..n] {
            fx.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_common::config::CmpConfig;
    use wire_model::wires::VlWidth;

    fn assert_send<T: Send>() {}

    #[test]
    fn engine_components_cross_threads() {
        // Compile-time guarantees the epoch scheduler relies on: the
        // sharded structures must be Send to be touched from workers.
        assert_send::<Tile>();
        assert_send::<L2Bank>();
        assert_send::<mesh_noc::subnet::SubNet<ProtocolMsg>>();
        assert_send::<Fx>();
    }

    #[test]
    fn lookahead_of_baseline_is_full_pipeline_plus_link() {
        let cfg = CmpConfig::default();
        let noc = NocConfig::baseline(&cfg.network, cfg.clock_hz);
        // 3-stage routers (2 wait cycles at each end) + 2-cycle link
        assert_eq!(lookahead_window(&noc), 6);
    }

    #[test]
    fn lookahead_of_heterogeneous_is_the_express_channel() {
        let cfg = CmpConfig::default();
        let noc = NocConfig::heterogeneous(&cfg.network, cfg.clock_hz, VlWidth::FourBytes);
        // VL: single-stage router (no wait) + 1-cycle link
        assert_eq!(lookahead_window(&noc), 1);
        let rp = NocConfig::reply_partitioning(&cfg.network, cfg.clock_hz);
        // L-wires: single-stage router + 1-cycle link
        assert_eq!(lookahead_window(&rp), 1);
    }

    #[test]
    fn pool_runs_every_worker_exactly_once_per_job() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for round in 0..100 {
            pool.run(|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), round + 1);
            }
        }
    }

    #[test]
    fn pool_partitions_disjoint_work_correctly() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u64; 1000];
        let owner: Vec<u32> = (0..1000).map(|i| (i % 3) as u32).collect();
        {
            let shards = Shards::new(&mut data[..]);
            let owner = &owner;
            pool.run(|w| {
                for i in 0..1000 {
                    if owner[i] as usize != w {
                        continue;
                    }
                    // SAFETY: each index has exactly one owner.
                    unsafe { *shards.get_mut(i) += (i as u64) + 1 };
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i as u64) + 1, "index {i}");
        }
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must surface on the caller");
        // the pool survives a panicked job and runs the next one
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let pool = WorkerPool::new(3);
        pool.run(|_| {});
        drop(pool); // must not hang or leak
    }
}
