//! End-of-run accounting: fold every component's counters into one
//! [`SimResult`].

use addr_compression::{CompressionHwCost, CompressionScheme};
use cmp_common::fault::FaultStats;
use cmp_common::types::{Cycle, MessageClass};
use energy_model::breakdown::EnergyBreakdown;
use energy_model::core_power::CoreEnergyModel;

use super::Engine;
use crate::niface::{InterconnectChoice, ResyncStats};

/// Per-class message accounting (network messages only, as in Figure 5).
#[derive(Clone, Debug)]
pub struct ClassCount {
    pub class: MessageClass,
    pub count: u64,
    pub bytes: u64,
    pub mean_latency: f64,
}

/// The outcome of one run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Application label.
    pub app: String,
    /// Compression scheme used.
    pub scheme: CompressionScheme,
    /// Link organisation used.
    pub interconnect: InterconnectChoice,
    /// Parallel-phase execution time in cycles.
    pub cycles: Cycle,
    /// Execution time in seconds.
    pub time_s: f64,
    /// Where the joules went.
    pub energy: EnergyBreakdown,
    /// Address-compression coverage (Figure 2 metric; 0 when the scheme
    /// is `None`).
    pub coverage: f64,
    /// Per-class network message counts (Figure 5).
    pub messages: Vec<ClassCount>,
    /// Total network messages.
    pub network_messages: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// L1 misses / L1 accesses.
    pub l1_miss_rate: f64,
    /// Mean network latency of critical messages.
    pub critical_latency: f64,
    /// Coverage measured by each passive probe scheme, in the order of
    /// `SimConfig::coverage_probes`.
    pub probe_coverages: Vec<(CompressionScheme, f64)>,
    /// Total cycles cores spent blocked on L1 misses.
    pub mem_stall_cycles: u64,
    /// Total cycles cores spent parked at barriers.
    pub barrier_stall_cycles: u64,
    /// Off-chip memory reads issued.
    pub mem_reads: u64,
    /// L2 inclusion recalls issued.
    pub l2_recalls: u64,
    /// Faults actually injected, by class (all zero without a campaign).
    pub fault_stats: FaultStats,
    /// Codec-resynchronisation accounting summed across all tiles.
    pub resync: ResyncStats,
    /// Sanitizer sweeps that ran (0 when the sanitizer is off).
    pub sanitizer_sweeps: u64,
}

impl SimResult {
    /// Link-level ED²P (Figure 6 bottom).
    pub fn link_ed2p(&self) -> f64 {
        self.energy.interconnect_ed2p(self.time_s)
    }

    /// Full-CMP ED²P (Figure 7).
    pub fn chip_ed2p(&self) -> f64 {
        self.energy.chip_ed2p(self.time_s)
    }

    /// Fraction of messages in `class`.
    pub fn class_fraction(&self, class: MessageClass) -> f64 {
        let total = self.network_messages.max(1);
        self.messages
            .iter()
            .find(|c| c.class == class)
            .map(|c| c.count as f64 / total as f64)
            .unwrap_or(0.0)
    }
}

impl Engine {
    /// Fold every component's counters into the run's report.
    pub(crate) fn collect(&mut self) -> SimResult {
        // Close any resync window still open at end-of-run: the handshake
        // completes in the drained network.
        let now = self.now;
        for tile in &mut self.tiles {
            tile.ni.tracker.settle(now);
        }
        let cfg = &self.cfg;
        let time_s = self.now as f64 * cfg.cmp.cycle_seconds();
        let tiles = cfg.cmp.tiles() as f64;

        // --- cores & caches (Wattch-lite) ---
        let cem = CoreEnergyModel::for_config(&cfg.cmp);
        let instructions: u64 = self.tiles.iter().map(|t| t.core.stats().instructions).sum();
        let l1_accesses: u64 = self.tiles.iter().map(|t| t.l1.stats().accesses.get()).sum();
        let l1_misses: u64 = self.tiles.iter().map(|t| t.l1.stats().misses.get()).sum();
        let l2_accesses: u64 = self
            .l2s
            .iter()
            .map(|b| b.slice.stats().requests.get() + b.slice.stats().writebacks.get())
            .sum();
        let core_dynamic = cem.dynamic(instructions, l1_accesses, l2_accesses);
        let core_static = cem.leakage_per_core.over(time_s) * tiles;

        // --- interconnect ---
        let net_energy = self.noc.energy();
        let link_static = self.noc.static_power().over(time_s);

        // --- compression hardware ---
        let hw = CompressionHwCost::for_scheme(cfg.scheme, cfg.cmp.tiles());
        let mut coverage_acc = addr_compression::CoverageStats::new();
        for tile in &self.tiles {
            coverage_acc.merge(tile.ni.codec.stats());
        }
        // every sender-side access has a mirrored receiver-side access
        let compression_accesses = coverage_acc.accesses() * 2;
        let compression_dynamic = hw.dyn_energy_per_access() * compression_accesses as f64;
        let compression_static = hw.static_power.over(time_s) * tiles;

        let energy = EnergyBreakdown {
            core_dynamic,
            core_static,
            link_dynamic: net_energy.link_dynamic,
            link_static,
            router_dynamic: net_energy.router_dynamic,
            compression_dynamic,
            compression_static,
        };

        let stats = self.noc.stats();
        let messages: Vec<ClassCount> = MessageClass::ALL
            .iter()
            .map(|&class| {
                let s = stats.class(class);
                ClassCount {
                    class,
                    count: s.count.get(),
                    bytes: s.bytes.get(),
                    mean_latency: s.latency.mean(),
                }
            })
            .collect();

        let probe_coverages = cfg
            .coverage_probes
            .iter()
            .enumerate()
            .map(|(k, &scheme)| {
                let mut acc = addr_compression::CoverageStats::new();
                for tile in &self.tiles {
                    acc.merge(tile.ni.probes[k].stats());
                }
                (scheme, acc.coverage())
            })
            .collect();

        SimResult {
            app: self.app_name.clone(),
            scheme: cfg.scheme,
            interconnect: cfg.interconnect,
            cycles: self.now,
            time_s,
            energy,
            coverage: coverage_acc.coverage(),
            network_messages: stats.delivered(),
            messages,
            instructions,
            l1_miss_rate: if l1_accesses == 0 {
                0.0
            } else {
                l1_misses as f64 / l1_accesses as f64
            },
            critical_latency: stats.critical_mean_latency(),
            probe_coverages,
            mem_stall_cycles: self
                .tiles
                .iter()
                .map(|t| t.core.stats().mem_stall_cycles)
                .sum(),
            mem_reads: self.mem.reads_issued.get(),
            l2_recalls: self.l2s.iter().map(|b| b.slice.stats().recalls.get()).sum(),
            barrier_stall_cycles: self
                .tiles
                .iter()
                .map(|t| t.core.stats().barrier_stall_cycles)
                .sum(),
            fault_stats: self
                .injector
                .as_ref()
                .map(|i| i.stats().clone())
                .unwrap_or_default(),
            resync: self.resync_stats(),
            sanitizer_sweeps: self.sanitizer.as_ref().map_or(0, |s| s.sweeps()),
        }
    }
}
