//! Coarse wall-clock attribution of the scheduler's per-iteration
//! phases.
//!
//! Profiling is a measurement mode, not an always-on counter: the
//! engine holds an `Option<Box<PhaseProfile>>` that is `None` unless
//! enabled via [`Engine::enable_profiling`] or the `TCMP_PROFILE`
//! environment gate, so the clean path pays one branch per phase.
//! When enabled, each scheduler phase is bracketed with
//! `Instant::now()` and its elapsed time lands in one bucket:
//!
//! * `mem_fills` — off-chip completions draining into the L2 slices
//!   (fill install + directory update + pump).
//! * `calendar` — delayed protocol sends due this cycle.
//! * `noc_tick` — router/link simulation inside the NoC.
//! * `l1_deliver` — delivered messages handled by an L1 (data replies,
//!   invalidations, forwards).
//! * `l2_deliver` — delivered messages handled by an L2 slice, which
//!   includes all directory work (requests, acks, writebacks).
//! * `cores` — core stepping, including the L1 `core_access` path.
//! * `advance` — the next-interesting-cycle scan.
//!
//! The split is deliberately coarse — phase-level, not per-call — so
//! enabling it perturbs the run by percents, not multiples. The one
//! exception is the delivery loop, which is timed per message so L1
//! and L2 handler time can be told apart; that price is only paid in
//! profile mode.
//!
//! [`Engine::enable_profiling`]: super::Engine::enable_profiling

use std::time::Instant;

/// Accumulated per-phase wall time, in nanoseconds.
#[derive(Debug, Default, Clone)]
pub struct PhaseProfile {
    /// Scheduler iterations observed.
    pub iterations: u64,
    /// Phase 1: memory completions → L2 fill + directory.
    pub mem_fills_ns: u64,
    /// Phase 2: delayed calendar events fired.
    pub calendar_ns: u64,
    /// Phase 3a: NoC router/link tick.
    pub noc_tick_ns: u64,
    /// Phase 3b: delivered messages handled by L1s.
    pub l1_deliver_ns: u64,
    /// Phase 3b: delivered messages handled by L2 slices (incl. all
    /// directory lookups/updates).
    pub l2_deliver_ns: u64,
    /// Phase 4: cores due now (core model + L1 core_access).
    pub cores_ns: u64,
    /// Phase 5: the next-interesting-cycle scan.
    pub advance_ns: u64,
}

impl PhaseProfile {
    /// Total attributed nanoseconds across all buckets.
    pub fn total_ns(&self) -> u64 {
        self.mem_fills_ns
            + self.calendar_ns
            + self.noc_tick_ns
            + self.l1_deliver_ns
            + self.l2_deliver_ns
            + self.cores_ns
            + self.advance_ns
    }

    /// Human-readable table: one line per bucket with wall share,
    /// sorted hottest-first.
    pub fn report(&self) -> String {
        let total = self.total_ns().max(1);
        let mut rows = [
            ("l2+directory handlers", self.l2_deliver_ns),
            ("l1 handlers", self.l1_deliver_ns),
            ("cores (incl. l1 access)", self.cores_ns),
            ("noc tick", self.noc_tick_ns),
            ("mem fills (l2+dir)", self.mem_fills_ns),
            ("calendar events", self.calendar_ns),
            ("clock advance", self.advance_ns),
        ];
        rows.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        let mut out = format!(
            "phase profile: {} iterations, {:.3}s attributed\n",
            self.iterations,
            self.total_ns() as f64 / 1e9
        );
        for (name, ns) in rows {
            out.push_str(&format!(
                "  {name:<24} {:>5.1}%  {:>8.3}s\n",
                ns as f64 * 100.0 / total as f64,
                ns as f64 / 1e9
            ));
        }
        out
    }
}

/// A started phase timer; [`Mark::stop`] adds the elapsed time to a
/// bucket. `None` when profiling is off, so the disabled path is one
/// `is_some` branch.
#[derive(Clone, Copy)]
pub struct Mark(Option<Instant>);

impl Mark {
    /// Start a timer iff `enabled`.
    #[inline]
    pub fn start(enabled: bool) -> Mark {
        Mark(enabled.then(Instant::now))
    }

    /// Add elapsed nanoseconds to `bucket` (no-op when disabled).
    #[inline]
    pub fn stop(self, bucket: &mut u64) {
        if let Some(t0) = self.0 {
            *bucket += t0.elapsed().as_nanos() as u64;
        }
    }
}

/// Parse a `TCMP_PROFILE` value: unset/empty/`0` off, `1` on.
/// Anything else is malformed — the caller warns once and enables
/// profiling (the conservative reading, matching `TCMP_SANITIZE`).
pub(crate) fn parse_profile(v: &str) -> Result<bool, String> {
    match v.trim() {
        "" | "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!(
            "TCMP_PROFILE={other:?} is not a recognised value; accepted: 0/unset/empty (off) \
             or 1 (on); treating it as 1"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_buckets_hottest_first_and_sums_shares() {
        let p = PhaseProfile {
            iterations: 10,
            mem_fills_ns: 100,
            calendar_ns: 50,
            noc_tick_ns: 400,
            l1_deliver_ns: 200,
            l2_deliver_ns: 150,
            cores_ns: 80,
            advance_ns: 20,
        };
        assert_eq!(p.total_ns(), 1000);
        let r = p.report();
        let noc = r.find("noc tick").expect("noc row present");
        let l1 = r.find("l1 handlers").expect("l1 row present");
        let adv = r.find("clock advance").expect("advance row present");
        assert!(noc < l1 && l1 < adv, "rows sorted hottest-first:\n{r}");
        assert!(r.contains("40.0%"), "noc share rendered:\n{r}");
    }

    #[test]
    fn mark_accumulates_only_when_enabled() {
        let mut bucket = 0u64;
        Mark::start(false).stop(&mut bucket);
        assert_eq!(bucket, 0);
        Mark::start(true).stop(&mut bucket);
        // Non-deterministic but strictly positive on any real clock is
        // not guaranteed (coarse clocks may report 0); just check it
        // did not underflow/panic and the enabled path ran.
    }

    #[test]
    fn profile_env_values_parse_like_sanitize() {
        assert_eq!(parse_profile(""), Ok(false));
        assert_eq!(parse_profile("0"), Ok(false));
        assert_eq!(parse_profile("1"), Ok(true));
        assert!(parse_profile("yes").is_err());
    }
}
