//! The network-interface policy of the proposal (Section 4.3).
//!
//! "VL-Wires will be used for sending already short, critical messages
//! (e.g., coherence replies) as well as *compressed* requests and
//! *compressed* coherence commands. Uncompressed and long messages are
//! sent using the original B-Wires."

use cmp_common::config::{CmpConfig, NetworkConfig};
use cmp_common::types::{Cycle, MessageClass, TileId};
use mesh_noc::config::{ChannelKind, NocConfig};
use wire_model::wires::VlWidth;

/// Which physical link organisation a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InterconnectChoice {
    /// One 75-byte B-Wire channel per link (the normalisation baseline).
    Baseline,
    /// 34 bytes of B-Wires + a VL channel of the given width
    /// (area-neutral re-provisioning) — this paper's proposal.
    Heterogeneous(VlWidth),
    /// 11 bytes of L-Wires + 64 bytes of PW-Wires with split data
    /// responses — the Reply Partitioning comparison point from the
    /// group's prior work (\[9\], HiPC 2007).
    ReplyPartitioning,
}

impl InterconnectChoice {
    /// Build the NoC configuration for this choice.
    pub fn noc_config(self, net: &NetworkConfig, clock_hz: f64) -> NocConfig {
        match self {
            InterconnectChoice::Baseline => NocConfig::baseline(net, clock_hz),
            InterconnectChoice::Heterogeneous(vl) => NocConfig::heterogeneous(net, clock_hz, vl),
            InterconnectChoice::ReplyPartitioning => NocConfig::reply_partitioning(net, clock_hz),
        }
    }

    /// The VL channel width in bytes (`None` for the baseline).
    pub fn vl_bytes(self) -> Option<usize> {
        match self {
            InterconnectChoice::Baseline | InterconnectChoice::ReplyPartitioning => None,
            InterconnectChoice::Heterogeneous(vl) => Some(vl.bytes()),
        }
    }

    /// Whether data responses are split into partial + ordinary replies.
    pub fn splits_replies(self) -> bool {
        self == InterconnectChoice::ReplyPartitioning
    }

    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            InterconnectChoice::Baseline => "75B B-Wires".to_string(),
            InterconnectChoice::Heterogeneous(vl) => {
                format!("34B B + {}B VL", vl.bytes())
            }
            InterconnectChoice::ReplyPartitioning => "11B L + 64B PW (RP)".to_string(),
        }
    }

    /// Sanity-check against the machine description.
    pub fn validate(self, cfg: &CmpConfig) -> Result<(), String> {
        if !matches!(self, InterconnectChoice::Baseline) && cfg.network.link_bytes != 75 {
            return Err("link re-provisioning assumes the 75-byte link of Table 4".into());
        }
        Ok(())
    }
}

/// Map a message to a physical channel.
///
/// * Baseline: everything on the B-Wires.
/// * Heterogeneous (this paper): critical messages whose on-wire size
///   fits the VL channel ride it; everything else (long data, whole
///   uncompressed addresses, non-critical replacements) rides the
///   B-Wires.
/// * Reply Partitioning (\[9\]): short critical messages (≤ 11 bytes,
///   including partial replies) ride the L-Wires; ordinary replies and
///   everything long or non-critical rides the PW-Wires.
#[inline]
pub fn map_channel(
    choice: InterconnectChoice,
    class: MessageClass,
    wire_bytes: usize,
) -> ChannelKind {
    match choice {
        InterconnectChoice::Baseline => ChannelKind::B,
        InterconnectChoice::Heterogeneous(vl) => {
            if class.is_critical() && wire_bytes <= vl.bytes() {
                ChannelKind::Vl
            } else {
                ChannelKind::B
            }
        }
        InterconnectChoice::ReplyPartitioning => {
            // data responses are split by the NI: the whole-line ordinary
            // reply is non-critical by construction here
            if class.is_critical()
                && class != MessageClass::ResponseData
                && wire_bytes <= wire_model::link::RP_L_BYTES
            {
                ChannelKind::L
            } else {
                ChannelKind::Pw
            }
        }
    }
}

/// Cycles a codec pair spends in its resynchronisation handshake after
/// the NI detects divergence: one request/grant round trip across the
/// mesh (worst-case ~30 cycles of B-Wire latency each way) during which
/// the pair transmits uncompressed.
pub const RESYNC_WINDOW_CYCLES: Cycle = 64;

/// Codec-resynchronisation accounting for one tile's NI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResyncStats {
    /// Divergences detected via the sequence/checksum tag.
    pub desyncs_detected: u64,
    /// Resync handshakes that ran to completion.
    pub resyncs_completed: u64,
    /// Messages sent uncompressed because their pair was resyncing
    /// (includes the detecting message itself).
    pub fallback_msgs: u64,
}

/// Per-(stream, destination) resynchronisation windows for one tile's
/// network interface.
///
/// Every compressed message carries a short sequence/checksum tag over
/// the sender's codec state; the receiver acks mismatches on the reply
/// path, so the sender learns of a desynchronised pair at the next
/// compressible send with certainty. Detection flips the pair to
/// uncompressed B-Wire transmission, resets the sender codec, and opens
/// a [`RESYNC_WINDOW_CYCLES`]-cycle window modelling the handshake that
/// clears the receiver mirror; the pair resumes compressed (cold) when
/// the window closes.
#[derive(Clone, Debug)]
pub struct ResyncTracker {
    /// `windows[stream][dest]`: cycle at which the pair's handshake
    /// completes (0 = no handshake running).
    windows: [Vec<Cycle>; 2],
    stats: ResyncStats,
}

impl ResyncTracker {
    /// Tracker for one tile of a `tiles`-tile machine.
    pub fn new(tiles: usize) -> Self {
        ResyncTracker {
            windows: [vec![0; tiles], vec![0; tiles]],
            stats: ResyncStats::default(),
        }
    }

    /// Accounting so far.
    pub fn stats(&self) -> &ResyncStats {
        &self.stats
    }

    /// Record a tag-detected divergence for (`dest`, `class`) at `now`:
    /// the handshake starts and the pair falls back to uncompressed.
    pub fn begin_resync(&mut self, now: Cycle, dest: TileId, class: MessageClass) {
        let Some(stream) = class.compression_stream() else {
            return;
        };
        self.stats.desyncs_detected += 1;
        self.windows[stream.index()][dest.index()] = now + RESYNC_WINDOW_CYCLES;
    }

    /// Whether (`dest`, `class`) must send uncompressed at `now`.
    /// Expired windows are closed lazily here, crediting a completed
    /// resync; open ones count the fallback message.
    pub fn in_window(&mut self, now: Cycle, dest: TileId, class: MessageClass) -> bool {
        let Some(stream) = class.compression_stream() else {
            return false;
        };
        let w = &mut self.windows[stream.index()][dest.index()];
        if *w == 0 {
            return false;
        }
        if now >= *w {
            *w = 0;
            self.stats.resyncs_completed += 1;
            return false;
        }
        self.stats.fallback_msgs += 1;
        true
    }

    /// Close every window that has expired by `now` (or is still open —
    /// the run is over and the handshake completes in the drained
    /// network), so end-of-run accounting matches detections.
    pub fn settle(&mut self, _now: Cycle) {
        for side in &mut self.windows {
            for w in side {
                if *w != 0 {
                    *w = 0;
                    self.stats.resyncs_completed += 1;
                }
            }
        }
    }
}

cmp_common::impl_persist!(ResyncStats {
    desyncs_detected,
    resyncs_completed,
    fallback_msgs,
});

/// Window vectors are sized by the tile count — machine shape, checked at
/// load.
impl cmp_common::persist::PersistState for ResyncTracker {
    fn save_state(&self, w: &mut cmp_common::persist::ByteWriter) {
        use cmp_common::persist::Persist;
        for side in &self.windows {
            side.save(w);
        }
        self.stats.save(w);
    }
    fn load_state(
        &mut self,
        r: &mut cmp_common::persist::ByteReader,
    ) -> Result<(), cmp_common::persist::PersistError> {
        use cmp_common::persist::Persist;
        for side in &mut self.windows {
            let loaded: Vec<Cycle> = Persist::load(r)?;
            if loaded.len() != side.len() {
                return Err(r.err("resync window count does not match machine shape"));
            }
            *side = loaded;
        }
        self.stats = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H4: InterconnectChoice = InterconnectChoice::Heterogeneous(VlWidth::FourBytes);
    const H5: InterconnectChoice = InterconnectChoice::Heterogeneous(VlWidth::FiveBytes);
    const RP: InterconnectChoice = InterconnectChoice::ReplyPartitioning;

    #[test]
    fn baseline_maps_everything_to_b() {
        for class in MessageClass::ALL {
            assert_eq!(
                map_channel(InterconnectChoice::Baseline, class, 3),
                ChannelKind::B
            );
        }
    }

    #[test]
    fn compressed_requests_and_commands_ride_vl() {
        // 4-byte compressed request on a 4-byte VL channel
        assert_eq!(map_channel(H4, MessageClass::Request, 4), ChannelKind::Vl);
        assert_eq!(
            map_channel(H5, MessageClass::CoherenceCmd, 5),
            ChannelKind::Vl
        );
        // uncompressed (11-byte) versions stay on B
        assert_eq!(map_channel(H5, MessageClass::Request, 11), ChannelKind::B);
    }

    #[test]
    fn coherence_replies_always_fit_vl() {
        for vl in VlWidth::ALL {
            assert_eq!(
                map_channel(
                    InterconnectChoice::Heterogeneous(vl),
                    MessageClass::CoherenceReply,
                    3
                ),
                ChannelKind::Vl
            );
        }
    }

    #[test]
    fn long_and_noncritical_messages_stay_on_b() {
        assert_eq!(
            map_channel(H5, MessageClass::ResponseData, 67),
            ChannelKind::B
        );
        // a replacement hint is short but non-critical
        assert_eq!(
            map_channel(H5, MessageClass::ReplacementNoData, 5),
            ChannelKind::B
        );
    }

    #[test]
    fn reply_partitioning_mapping() {
        // short critical messages (and the split-off partial replies)
        // ride the 11-byte L-Wires
        assert_eq!(map_channel(RP, MessageClass::Request, 11), ChannelKind::L);
        assert_eq!(
            map_channel(RP, MessageClass::PartialReply, 11),
            ChannelKind::L
        );
        assert_eq!(
            map_channel(RP, MessageClass::CoherenceReply, 3),
            ChannelKind::L
        );
        assert_eq!(
            map_channel(RP, MessageClass::CoherenceCmd, 11),
            ChannelKind::L
        );
        // ordinary (whole-line) replies and non-critical traffic take PW
        assert_eq!(
            map_channel(RP, MessageClass::ResponseData, 67),
            ChannelKind::Pw
        );
        assert_eq!(
            map_channel(RP, MessageClass::ReplacementData, 67),
            ChannelKind::Pw
        );
        assert_eq!(
            map_channel(RP, MessageClass::ReplacementNoData, 11),
            ChannelKind::Pw
        );
        assert_eq!(map_channel(RP, MessageClass::Revision, 67), ChannelKind::Pw);
        assert!(RP.splits_replies());
        assert!(!H4.splits_replies());
    }

    #[test]
    fn resync_window_opens_counts_fallbacks_and_closes() {
        let mut t = ResyncTracker::new(16);
        let dest = TileId(7);
        assert!(!t.in_window(10, dest, MessageClass::Request));
        t.begin_resync(10, dest, MessageClass::Request);
        assert!(t.in_window(11, dest, MessageClass::Request));
        assert!(t.in_window(10 + RESYNC_WINDOW_CYCLES - 1, dest, MessageClass::Request));
        // other destinations and the other stream are unaffected
        assert!(!t.in_window(11, TileId(8), MessageClass::Request));
        assert!(!t.in_window(11, dest, MessageClass::CoherenceCmd));
        // window expiry closes the handshake exactly once
        assert!(!t.in_window(10 + RESYNC_WINDOW_CYCLES, dest, MessageClass::Request));
        assert!(!t.in_window(10 + RESYNC_WINDOW_CYCLES + 1, dest, MessageClass::Request));
        let s = t.stats();
        assert_eq!(s.desyncs_detected, 1);
        assert_eq!(s.resyncs_completed, 1);
        assert_eq!(s.fallback_msgs, 2);
    }

    #[test]
    fn settle_closes_open_windows() {
        let mut t = ResyncTracker::new(16);
        t.begin_resync(100, TileId(1), MessageClass::Request);
        t.begin_resync(100, TileId(2), MessageClass::CoherenceCmd);
        t.settle(110);
        assert_eq!(t.stats().resyncs_completed, 2);
        assert!(!t.in_window(110, TileId(1), MessageClass::Request));
        // non-compressible classes never open or consult windows
        t.begin_resync(0, TileId(3), MessageClass::ResponseData);
        assert_eq!(t.stats().desyncs_detected, 2);
    }

    #[test]
    fn interconnect_choice_builders() {
        let cfg = CmpConfig::default();
        let base = InterconnectChoice::Baseline;
        assert!(base.vl_bytes().is_none());
        base.validate(&cfg).unwrap();
        let hetero = InterconnectChoice::Heterogeneous(VlWidth::FourBytes);
        assert_eq!(hetero.vl_bytes(), Some(4));
        hetero.validate(&cfg).unwrap();
        let noc = hetero.noc_config(&cfg.network, cfg.clock_hz);
        assert!(noc.has_vl());

        let mut narrow = cfg.clone();
        narrow.network.link_bytes = 32;
        assert!(hetero.validate(&narrow).is_err());
    }
}
