//! Supervised, crash-resumable execution of experiment campaigns.
//!
//! A figure matrix is hours of compute; this module makes one cell
//! misbehaving (livelock, runaway, simulator bug) or the whole process
//! dying (OOM kill, pre-emption, ctrl-C) cost a cell, not the campaign:
//!
//! * [`RunPolicy`] bounds each cell — a cycle budget, a wall-clock
//!   deadline, bounded retry-with-backoff — and opts into periodic
//!   in-process snapshots so an aborted cell can be *rewound* and
//!   re-stepped with the protocol sanitizer armed, turning "the
//!   watchdog fired" into a forensic verdict ([`ForensicReport`]).
//! * [`run_supervised`] runs one cell under a policy.
//! * [`run_matrix_supervised`] runs a whole sweep under a policy,
//!   recording every cell into a durable [`Journal`]; re-running with
//!   the same journal skips finished cells, so a `SIGKILL`ed campaign
//!   resumes bit-identically (rows come back through the lossless
//!   [`result_to_json`]/[`result_from_json`] codec).
//! * [`with_retries`]/[`reseed`] are the generic retry ladder, shared
//!   with the fault-campaign driver: attempt 0 keeps the original seed
//!   so deterministic results stay deterministic, later attempts
//!   perturb only the *fault* seed, never the workload trace.

use std::borrow::BorrowMut;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use addr_compression::CompressionScheme;
use cmp_common::config::CmpConfig;
use cmp_common::fault::FaultStats;
use cmp_common::journal::{fingerprint, CampaignMeta, Journal, Json};
use cmp_common::stats::Counter;
use cmp_common::types::{Cycle, MessageClass};
use cmp_common::units::Joules;
use coherence::sanitizer::SanitizerConfig;
use energy_model::breakdown::EnergyBreakdown;
use wire_model::wires::VlWidth;
use workloads::profile::AppProfile;

use crate::checkpoint::{CacheLoad, CheckpointCache, WarmKey};
use crate::experiment::{panic_message, RunSpec};
use crate::niface::{InterconnectChoice, ResyncStats};
use crate::sim::{ClassCount, CmpSimulator, SimConfig, SimError, SimResult};

/// How often the supervisor polls the wall clock and the snapshot
/// schedule, in scheduler iterations. `Instant::now` is tens of
/// nanoseconds; at this cadence the overhead is unmeasurable.
const SUPERVISE_EVERY_ITERS: u64 = 2048;

/// Per-cell resource limits and failure handling for supervised runs.
#[derive(Clone, Debug)]
pub struct RunPolicy {
    /// Cap the cell at this many simulated cycles (tightens the
    /// config's own `max_cycles`; `None` keeps the config's cap).
    pub cycle_budget: Option<Cycle>,
    /// Abort the cell with [`SimError::WallDeadline`] once this much
    /// real time has elapsed (`None` = no deadline).
    pub wall_deadline: Option<Duration>,
    /// Re-run a failed cell up to this many extra times.
    pub retries: u32,
    /// Sleep before the first retry; doubles on each further retry.
    pub backoff: Duration,
    /// Checkpoint the machine every this many cycles so an aborted
    /// cell can be rewound for forensics (`None` = no snapshots).
    pub snapshot_period: Option<Cycle>,
    /// On a forward-progress abort, rewind to the last checkpoint and
    /// re-step with the protocol sanitizer armed, attaching a
    /// [`ForensicReport`] to the failure.
    pub forensics: bool,
    /// Stop claiming new cells after this many have been attempted —
    /// the in-process analogue of killing the campaign mid-flight,
    /// used by the resume tests (`None` = run everything).
    pub cell_limit: Option<usize>,
    /// Scheduler threads *inside* each cell (the epoch scheduler's
    /// `--sim-threads`; `None` keeps the config's own setting). Results
    /// are bit-identical for every value. The matrix driver shrinks its
    /// worker pool so `jobs × sim_threads` stays within the machine.
    pub sim_threads: Option<usize>,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            cycle_budget: None,
            wall_deadline: None,
            retries: 0,
            backoff: Duration::from_millis(100),
            snapshot_period: None,
            forensics: false,
            cell_limit: None,
            sim_threads: None,
        }
    }
}

/// What the rewind-and-replay pass learned about an aborted cell.
#[derive(Clone, Debug)]
pub struct ForensicReport {
    /// Cycle of the checkpoint the machine was rewound to.
    pub rewound_to: Cycle,
    /// Cycle the sanitized replay reached before stopping.
    pub replayed_to: Cycle,
    /// Human-readable conclusion (sanitizer verdict or reproduction).
    pub verdict: String,
}

/// A supervised cell that failed terminally, with any forensics.
#[derive(Debug)]
pub struct SupervisedFailure {
    pub error: SimError,
    pub forensics: Option<ForensicReport>,
}

impl std::fmt::Display for SupervisedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)?;
        if let Some(fr) = &self.forensics {
            write!(
                f,
                "\nforensics: rewound to cycle {}, replayed to cycle {}: {}",
                fr.rewound_to, fr.replayed_to, fr.verdict
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SupervisedFailure {}

/// Run one cell under `policy`: step the simulator with periodic
/// wall-clock checks and (optionally) rolling snapshots; on a
/// forward-progress abort, optionally rewind and replay with the
/// sanitizer armed to classify the failure.
pub fn run_supervised(
    mut cfg: SimConfig,
    app: &AppProfile,
    seed: u64,
    scale: f64,
    policy: &RunPolicy,
) -> Result<SimResult, SupervisedFailure> {
    if let Some(budget) = policy.cycle_budget {
        cfg.max_cycles = cfg.max_cycles.min(budget);
    }
    if policy.sim_threads.is_some() {
        cfg.sim_threads = policy.sim_threads;
    }
    let mut sim = CmpSimulator::new(cfg, app, seed, scale);
    supervise(&mut sim, policy)
}

/// How one supervised run crossed (or didn't) its warm-start point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmStart {
    /// No checkpoint cache was offered.
    Disabled,
    /// Cache miss: the prefix was simulated fresh and stored for later
    /// sharers of the same configuration.
    Stored,
    /// Cache hit: the run fast-forwarded from a verified checkpoint.
    Warmed,
    /// The cached checkpoint failed digest verification: it was
    /// quarantined and this run simulated fresh (then re-stored a clean
    /// checkpoint under the same key).
    Quarantined,
    /// The run completed before reaching the warm point; nothing was
    /// cached.
    Finished,
}

impl WarmStart {
    /// Stable label (events, logs).
    pub fn label(&self) -> &'static str {
        match self {
            WarmStart::Disabled => "disabled",
            WarmStart::Stored => "stored",
            WarmStart::Warmed => "warmed",
            WarmStart::Quarantined => "quarantined",
            WarmStart::Finished => "finished",
        }
    }

    /// Parse a [`WarmStart::label`] back.
    pub fn from_label(s: &str) -> Option<WarmStart> {
        Some(match s {
            "disabled" => WarmStart::Disabled,
            "stored" => WarmStart::Stored,
            "warmed" => WarmStart::Warmed,
            "quarantined" => WarmStart::Quarantined,
            "finished" => WarmStart::Finished,
            _ => return None,
        })
    }
}

/// The checkpoint-cache key for one cell: a fingerprint of everything
/// that shapes its simulation prefix — the full [`SimConfig`] (machine,
/// interconnect, scheme, fault campaign, sanitizer, watchdog and cycle
/// cap, via its `Debug` rendering), the app, the trace seed and the
/// scale — paired with the warm-point cycle. `sim_threads` is excluded:
/// it is a host-side execution strategy, bit-identical by construction,
/// and snapshots deliberately transplant across thread counts.
pub fn warm_key(cfg: &SimConfig, app: &AppProfile, seed: u64, scale: f64, warm: Cycle) -> WarmKey {
    let mut kc = cfg.clone();
    kc.sim_threads = None;
    let desc = format!("{kc:?}|app={}|seed={seed:#x}|scale={scale:?}", app.name);
    (fingerprint(&desc), warm)
}

/// [`run_supervised`] with an optional warm-start checkpoint cache.
///
/// With `cache = Some((cache, warm_cycles))`, the run first consults
/// the cache for a checkpoint of its own configuration at the warm
/// point: a verified hit is restored (fast-forward); a miss — or a
/// corrupt entry, which is quarantined — simulates the prefix fresh
/// and stores a checkpoint at the first iteration boundary at or past
/// `warm_cycles`. Either way the remainder runs under the normal
/// supervision loop, and because snapshot/restore is bit-identical,
/// the result is exactly that of an uncached run — the cache can only
/// change wall-clock time, never numbers.
pub fn run_supervised_cached(
    mut cfg: SimConfig,
    app: &AppProfile,
    seed: u64,
    scale: f64,
    policy: &RunPolicy,
    cache: Option<(&CheckpointCache, Cycle)>,
) -> Result<(SimResult, WarmStart), SupervisedFailure> {
    if let Some(budget) = policy.cycle_budget {
        cfg.max_cycles = cfg.max_cycles.min(budget);
    }
    if policy.sim_threads.is_some() {
        cfg.sim_threads = policy.sim_threads;
    }
    let Some((cache, warm_cycles)) = cache.filter(|&(_, w)| w > 0) else {
        let mut sim = CmpSimulator::new(cfg, app, seed, scale);
        return supervise(&mut sim, policy).map(|r| (r, WarmStart::Disabled));
    };
    let key = warm_key(&cfg, app, seed, scale, warm_cycles);
    let mut sim = CmpSimulator::new(cfg, app, seed, scale);
    // The freshly built machine IS the decode template for the disk
    // tier: the warm key fingerprints the full configuration, so its
    // shape provably matches whatever bytes are stored under this key.
    let warm = match cache.load_via(&key, || Box::new(sim.snapshot())) {
        CacheLoad::Hit(snap) => {
            sim.restore(&snap);
            WarmStart::Warmed
        }
        outcome => {
            let warm = match outcome {
                CacheLoad::Quarantined => WarmStart::Quarantined,
                _ => WarmStart::Stored,
            };
            // Simulate the prefix fresh, then checkpoint it for the
            // next sharer. The supervision loop proper takes over after
            // the warm point; the prefix is short by construction, so
            // running it without wall-clock polling is fine.
            loop {
                if sim.cycle() >= warm_cycles {
                    cache.store(key, sim.snapshot());
                    break;
                }
                match sim.step() {
                    Ok(true) => {}
                    Ok(false) => return Ok((sim.finish(), WarmStart::Finished)),
                    Err(error) => {
                        return Err(SupervisedFailure {
                            error,
                            forensics: None,
                        })
                    }
                }
            }
            warm
        }
    };
    supervise(&mut sim, policy).map(|r| (r, warm))
}

/// [`run_supervised`] for a simulator the caller has already built
/// (and possibly instrumented with campaign hooks). The policy's
/// `cycle_budget` is not applied here — it tightens the config, which
/// is fixed once the machine exists.
pub fn supervise(
    sim: &mut CmpSimulator,
    policy: &RunPolicy,
) -> Result<SimResult, SupervisedFailure> {
    let started = Instant::now();
    let mut checkpoint = None;
    let mut next_snapshot = policy.snapshot_period.unwrap_or(Cycle::MAX);
    let mut iters: u64 = 0;
    loop {
        match sim.step() {
            Ok(true) => {}
            Ok(false) => return Ok(sim.finish()),
            Err(error) => {
                let wants_forensics = policy.forensics
                    && matches!(
                        error,
                        SimError::NoForwardProgress { .. } | SimError::Watchdog { .. }
                    );
                let forensics = if wants_forensics {
                    checkpoint
                        .as_ref()
                        .map(|snap| forensic_replay(sim, snap, error.cycle()))
                } else {
                    None
                };
                return Err(SupervisedFailure { error, forensics });
            }
        }
        iters += 1;
        if iters % SUPERVISE_EVERY_ITERS != 0 {
            continue;
        }
        if sim.cycle() >= next_snapshot {
            checkpoint = Some(sim.snapshot());
            // period is Some whenever next_snapshot is reachable
            next_snapshot = sim.cycle() + policy.snapshot_period.unwrap_or(Cycle::MAX);
        }
        if let Some(deadline) = policy.wall_deadline {
            if started.elapsed() >= deadline {
                return Err(SupervisedFailure {
                    error: SimError::WallDeadline {
                        cycle: sim.cycle(),
                        limit_ms: deadline.as_millis() as u64,
                    },
                    forensics: None,
                });
            }
        }
    }
}

/// Rewind to `snap`, arm the sanitizer, and re-step until the replay
/// either reproduces a failure or passes `abort_cycle`. Deterministic
/// replay re-trips the same abort, so the loop is bounded by the
/// original stall window.
fn forensic_replay(
    sim: &mut CmpSimulator,
    snap: &crate::engine::MachineSnapshot,
    abort_cycle: Cycle,
) -> ForensicReport {
    let rewound_to = snap.cycle();
    sim.restore(snap);
    sim.arm_sanitizer(SanitizerConfig::default());
    let verdict = loop {
        match sim.step() {
            Ok(true) => {
                if sim.cycle() > abort_cycle {
                    break "replay ran past the abort cycle without failing \
                           (the abort did not reproduce from the checkpoint)"
                        .to_string();
                }
            }
            Ok(false) => break "replay ran to completion".to_string(),
            Err(SimError::Sanitizer {
                cycle, violations, ..
            }) => {
                break format!(
                    "sanitizer found {} coherence violation(s) at cycle {cycle}: \
                     the stall follows metadata corruption, not a scheduling loop",
                    violations.len()
                );
            }
            Err(e) => {
                break format!(
                    "replay reproduced the failure ({}); sanitizer sweeps up to that \
                     point found the coherence state consistent — genuine \
                     forward-progress loss, not metadata corruption",
                    e.brief()
                );
            }
        }
    };
    ForensicReport {
        rewound_to,
        replayed_to: sim.cycle(),
        verdict,
    }
}

/// Call `attempt(n)` for `n = 0, 1, …` until it succeeds or `retries`
/// extra attempts are exhausted, sleeping `backoff · 2ⁿ` between
/// attempts. On terminal failure returns the total attempt count with
/// the last error.
pub fn with_retries<T, E>(
    retries: u32,
    backoff: Duration,
    mut attempt: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, (u32, E)> {
    let mut n: u32 = 0;
    loop {
        match attempt(n) {
            Ok(v) => return Ok(v),
            Err(e) if n >= retries => return Err((n + 1, e)),
            Err(_) => {
                let wait = backoff.saturating_mul(1u32 << n.min(16));
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                n += 1;
            }
        }
    }
}

/// Derive the fault seed for retry `attempt` of a cell seeded with
/// `seed`. Attempt 0 is the identity — a retry of a deterministic
/// failure only makes sense with fresh fault timing, but the *first*
/// run must use exactly the configured seed. SplitMix64 finalizer, so
/// nearby attempts get unrelated streams.
pub fn reseed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Journal key of one matrix cell: stable across processes and builds,
/// unique within a sweep (label + seed + scale disambiguate repeats of
/// one (app, config) pair).
pub fn cell_key(spec: &RunSpec) -> String {
    format!(
        "{}|{}|seed={:#x}|scale={:?}",
        spec.app.name, spec.config.label, spec.seed, spec.scale
    )
}

/// Git revision stamped into campaign journals: `TCMP_GIT_SHA` when
/// set (CI), else `git rev-parse`, else `"unknown"`.
pub fn build_git_sha() -> String {
    if let Ok(sha) = std::env::var("TCMP_GIT_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The identity stamp of a sweep: build SHA plus a fingerprint of the
/// machine description and every cell. [`Journal::resume`] refuses a
/// mismatch, so rows from a different build or sweep never mix.
pub fn campaign_meta(cmp: &CmpConfig, specs: &[RunSpec]) -> CampaignMeta {
    let mut desc = format!("{cmp:?}");
    for s in specs {
        desc.push('\n');
        desc.push_str(&cell_key(s));
        desc.push_str(&format!(
            "|{:?}|{:?}",
            s.config.interconnect, s.config.scheme
        ));
    }
    CampaignMeta {
        git_sha: build_git_sha(),
        config_hash: fingerprint(&desc),
        cells: specs.len(),
    }
}

/// One cell of a supervised matrix that failed terminally.
#[derive(Debug)]
pub struct CellFailure {
    /// Index into the spec list (and into `MatrixReport::results`).
    pub index: usize,
    pub app: String,
    pub config: String,
    /// Attempts made (1 = no retries were left or needed).
    pub attempts: u32,
    pub error: SimError,
    pub forensics: Option<ForensicReport>,
}

/// Outcome of a supervised matrix: one slot per spec, in spec order —
/// the order is a function of the spec list alone, never of thread
/// scheduling or which attempt finally succeeded.
#[derive(Debug, Default)]
pub struct MatrixReport {
    /// Index-aligned with the spec list; `None` where the cell failed
    /// or was never attempted (`cell_limit`).
    pub results: Vec<Option<SimResult>>,
    /// Terminal failures, sorted by cell index.
    pub failures: Vec<CellFailure>,
    /// Cells skipped because the journal already had their rows.
    pub skipped: usize,
}

impl MatrixReport {
    /// Did every cell produce a result?
    pub fn is_complete(&self) -> bool {
        self.results.iter().all(Option::is_some)
    }

    /// The successful rows, in spec order.
    pub fn completed(&self) -> Vec<SimResult> {
        self.results.iter().flatten().cloned().collect()
    }
}

/// Outcome of one journaled, retried, panic-isolated cell.
pub struct CellRun {
    /// The cell's result, or its terminal failure.
    pub outcome: Result<SimResult, SupervisedFailure>,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// How the successful attempt crossed the warm-start point
    /// ([`WarmStart::Disabled`] on failure or without a cache).
    pub warm: WarmStart,
}

/// Run one matrix cell exactly as [`run_matrix_supervised`]'s workers
/// do — per-attempt `start` records, panic isolation, the retry ladder
/// reseeding only the fault injector, a terminal `finish`/`fail` record
/// — but callable from any driver that owns its own journal (the
/// campaign service runs every queued cell through this).
///
/// `journal` accepts anything mutex-wrapping a [`Journal`] (owned or
/// `&mut`). `cache` is consulted only on attempt 0: a retry perturbs
/// the fault seed, which changes the configuration fingerprint, so
/// caching retry prefixes would only pollute the cache.
pub fn run_journaled_cell<J: BorrowMut<Journal>>(
    cmp: &CmpConfig,
    spec: &RunSpec,
    policy: &RunPolicy,
    journal: Option<&Mutex<J>>,
    cache: Option<(&CheckpointCache, Cycle)>,
) -> CellRun {
    // Qualified so the blanket `impl BorrowMut<T> for T` on the guard
    // itself cannot shadow the journal view of `J`.
    fn with_journal<J: BorrowMut<Journal>>(j: &Mutex<J>, f: impl FnOnce(&mut Journal)) {
        let mut guard = j.lock().unwrap_or_else(|p| p.into_inner());
        f(BorrowMut::<Journal>::borrow_mut(&mut *guard));
    }
    let key = cell_key(spec);
    let warm_seen = std::cell::Cell::new(WarmStart::Disabled);
    let attempts_made = std::cell::Cell::new(0u32);
    let run = |attempt: u32| {
        attempts_made.set(attempt + 1);
        if let Some(j) = journal {
            with_journal(j, |j| {
                if let Err(e) = j.record_start(&key, attempt + 1) {
                    eprintln!("journal: start record for cell {key} failed: {e}");
                }
            });
        }
        // A panicking cell must not leave its slot empty, the mutex
        // poisoned, or its journal entry dangling.
        catch_unwind(AssertUnwindSafe(|| {
            let mut cfg = SimConfig::new(spec.config.interconnect, spec.config.scheme);
            cfg.cmp = cmp.clone();
            // Retries perturb only the fault-injector seed; the
            // workload trace seed is part of the cell's identity and
            // never changes.
            cfg.faults.seed = reseed(cfg.faults.seed, attempt);
            let cache = if attempt == 0 { cache } else { None };
            run_supervised_cached(cfg, &spec.app, spec.seed, spec.scale, policy, cache).map(
                |(result, warm)| {
                    warm_seen.set(warm);
                    result
                },
            )
        }))
        .unwrap_or_else(|payload| {
            Err(SupervisedFailure {
                error: SimError::Panic {
                    message: panic_message(payload),
                },
                forensics: None,
            })
        })
    };
    match with_retries(policy.retries, policy.backoff, run) {
        Ok(result) => {
            if let Some(j) = journal {
                with_journal(j, |j| {
                    // A lost finish record only costs a re-simulation
                    // on resume — but it must never be lost silently.
                    if let Err(e) = j.record_finish(&key, result_to_json(&result)) {
                        eprintln!(
                            "journal: finish record for cell {key} failed \
                             (the cell will re-run on resume): {e}"
                        );
                    }
                });
            }
            CellRun {
                outcome: Ok(result),
                attempts: attempts_made.get(),
                warm: warm_seen.get(),
            }
        }
        Err((attempts, failure)) => {
            if let Some(j) = journal {
                with_journal(j, |j| {
                    if let Err(e) = j.record_fail(&key, attempts, &failure.error.brief()) {
                        eprintln!("journal: fail record for cell {key} failed: {e}");
                    }
                });
            }
            CellRun {
                outcome: Err(failure),
                attempts,
                warm: WarmStart::Disabled,
            }
        }
    }
}

/// Execute `specs` on a worker pool under `policy`, recording every
/// cell into `journal` when one is given.
///
/// With a journal, cells whose finish records replay from disk are
/// *skipped* and their rows decoded from the journal — so a campaign
/// killed at any instant (including mid-append: a torn final line is
/// tolerated) resumes with only the unfinished cells re-run, and the
/// assembled result set is bit-identical to an uninterrupted sweep.
/// Failed and interrupted cells are re-attempted; a panicking cell is
/// converted to [`SimError::Panic`] and *released* with a fail record
/// rather than left dangling in the journal.
pub fn run_matrix_supervised(
    cmp: &CmpConfig,
    specs: &[RunSpec],
    jobs: Option<usize>,
    policy: &RunPolicy,
    journal: Option<&mut Journal>,
) -> MatrixReport {
    let mut slots: Vec<Option<Result<SimResult, CellFailure>>> =
        (0..specs.len()).map(|_| None).collect();
    let mut skipped = 0;
    let journal = journal.map(Mutex::new);

    // Replay: decode finished cells straight from the journal. A row
    // that no longer decodes (schema drift within one build would be a
    // bug, but be safe) is re-run rather than trusted.
    if let Some(j) = &journal {
        let replay = j.lock().unwrap_or_else(|p| p.into_inner()).replay.clone();
        for (i, spec) in specs.iter().enumerate() {
            if let Some(row) = replay.completed.get(&cell_key(spec)) {
                if let Ok(result) = result_from_json(row) {
                    slots[i] = Some(Ok(result));
                    skipped += 1;
                }
            }
        }
    }

    let mut pending: Vec<usize> = (0..specs.len()).filter(|&i| slots[i].is_none()).collect();
    if let Some(limit) = policy.cell_limit {
        pending.truncate(limit);
    }

    let threads = crate::experiment::matrix_worker_threads(jobs, policy.sim_threads, pending.len());
    let next = AtomicUsize::new(0);
    let slots = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= pending.len() {
                    break;
                }
                let i = pending[k];
                let spec = &specs[i];
                let cell = run_journaled_cell(cmp, spec, policy, journal.as_ref(), None);
                let outcome = match cell.outcome {
                    Ok(result) => Ok(result),
                    Err(failure) => Err(CellFailure {
                        index: i,
                        app: spec.app.name.to_string(),
                        config: spec.config.label.clone(),
                        attempts: cell.attempts,
                        error: failure.error,
                        forensics: failure.forensics,
                    }),
                };
                slots.lock().unwrap_or_else(|p| p.into_inner())[i] = Some(outcome);
            });
        }
    });

    let mut results = Vec::with_capacity(specs.len());
    let mut failures = Vec::new();
    for slot in slots.into_inner().unwrap_or_else(|p| p.into_inner()) {
        match slot {
            Some(Ok(r)) => results.push(Some(r)),
            Some(Err(f)) => {
                results.push(None);
                failures.push(f);
            }
            None => results.push(None),
        }
    }
    failures.sort_by_key(|f| f.index);
    MatrixReport {
        results,
        failures,
        skipped,
    }
}

// --- SimResult ⇄ JSON codec -------------------------------------------
//
// Lossless both ways: integers are written as decimal u64 tokens and
// floats via Rust's shortest round-trip repr, which `Json` stores as
// raw number tokens — so a row decoded from the journal compares (and
// renders into CSVs) bit-identically to the in-process original.

fn joules_json(j: Joules) -> Json {
    Json::f64(j.value())
}

fn scheme_to_json(s: CompressionScheme) -> Json {
    let obj = |kind: &str, rest: Vec<(String, Json)>| {
        let mut fields = vec![("kind".to_string(), Json::str(kind))];
        fields.extend(rest);
        Json::Obj(fields)
    };
    match s {
        CompressionScheme::None => obj("none", vec![]),
        CompressionScheme::Dbrc { entries, low_bytes } => obj(
            "dbrc",
            vec![
                ("entries".to_string(), Json::u64(entries as u64)),
                ("low_bytes".to_string(), Json::u64(low_bytes as u64)),
            ],
        ),
        CompressionScheme::Stride { low_bytes } => obj(
            "stride",
            vec![("low_bytes".to_string(), Json::u64(low_bytes as u64))],
        ),
        CompressionScheme::Perfect { low_bytes } => obj(
            "perfect",
            vec![("low_bytes".to_string(), Json::u64(low_bytes as u64))],
        ),
        CompressionScheme::Multicast { entries, low_bytes } => obj(
            "multicast",
            vec![
                ("entries".to_string(), Json::u64(entries as u64)),
                ("low_bytes".to_string(), Json::u64(low_bytes as u64)),
            ],
        ),
    }
}

fn scheme_from_json(j: &Json) -> Result<CompressionScheme, String> {
    let kind = need_str(j, "kind")?;
    match kind {
        "none" => Ok(CompressionScheme::None),
        "dbrc" => Ok(CompressionScheme::Dbrc {
            entries: need_u64(j, "entries")? as usize,
            low_bytes: need_u64(j, "low_bytes")? as usize,
        }),
        "stride" => Ok(CompressionScheme::Stride {
            low_bytes: need_u64(j, "low_bytes")? as usize,
        }),
        "perfect" => Ok(CompressionScheme::Perfect {
            low_bytes: need_u64(j, "low_bytes")? as usize,
        }),
        "multicast" => Ok(CompressionScheme::Multicast {
            entries: need_u64(j, "entries")? as usize,
            low_bytes: need_u64(j, "low_bytes")? as usize,
        }),
        other => Err(format!("unknown compression scheme `{other}`")),
    }
}

fn interconnect_to_json(i: InterconnectChoice) -> Json {
    match i {
        InterconnectChoice::Baseline => {
            Json::Obj(vec![("kind".to_string(), Json::str("baseline"))])
        }
        InterconnectChoice::Heterogeneous(vl) => Json::Obj(vec![
            ("kind".to_string(), Json::str("heterogeneous")),
            ("vl_bytes".to_string(), Json::u64(vl.bytes() as u64)),
        ]),
        InterconnectChoice::ReplyPartitioning => {
            Json::Obj(vec![("kind".to_string(), Json::str("reply_partitioning"))])
        }
    }
}

fn interconnect_from_json(j: &Json) -> Result<InterconnectChoice, String> {
    match need_str(j, "kind")? {
        "baseline" => Ok(InterconnectChoice::Baseline),
        "heterogeneous" => {
            let bytes = need_u64(j, "vl_bytes")?;
            VlWidth::ALL
                .iter()
                .copied()
                .find(|w| w.bytes() as u64 == bytes)
                .map(InterconnectChoice::Heterogeneous)
                .ok_or_else(|| format!("no VL width of {bytes} bytes"))
        }
        "reply_partitioning" => Ok(InterconnectChoice::ReplyPartitioning),
        other => Err(format!("unknown interconnect `{other}`")),
    }
}

fn class_from_label(label: &str) -> Result<MessageClass, String> {
    MessageClass::ALL
        .iter()
        .copied()
        .find(|c| c.label() == label)
        .ok_or_else(|| format!("unknown message class `{label}`"))
}

fn need<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn need_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    need(j, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn need_u64(j: &Json, key: &str) -> Result<u64, String> {
    need(j, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

fn need_f64(j: &Json, key: &str) -> Result<f64, String> {
    need(j, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn need_joules(j: &Json, key: &str) -> Result<Joules, String> {
    need_f64(j, key).map(Joules)
}

fn need_counter(j: &Json, key: &str) -> Result<Counter, String> {
    need_u64(j, key).map(Counter)
}

/// Encode a run's result as a journal row.
pub fn result_to_json(r: &SimResult) -> Json {
    let energy = Json::Obj(vec![
        (
            "core_dynamic".to_string(),
            joules_json(r.energy.core_dynamic),
        ),
        ("core_static".to_string(), joules_json(r.energy.core_static)),
        (
            "link_dynamic".to_string(),
            joules_json(r.energy.link_dynamic),
        ),
        ("link_static".to_string(), joules_json(r.energy.link_static)),
        (
            "router_dynamic".to_string(),
            joules_json(r.energy.router_dynamic),
        ),
        (
            "compression_dynamic".to_string(),
            joules_json(r.energy.compression_dynamic),
        ),
        (
            "compression_static".to_string(),
            joules_json(r.energy.compression_static),
        ),
    ]);
    let messages = Json::Arr(
        r.messages
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("class".to_string(), Json::str(c.class.label())),
                    ("count".to_string(), Json::u64(c.count)),
                    ("bytes".to_string(), Json::u64(c.bytes)),
                    ("mean_latency".to_string(), Json::f64(c.mean_latency)),
                ])
            })
            .collect(),
    );
    let probes = Json::Arr(
        r.probe_coverages
            .iter()
            .map(|(scheme, coverage)| {
                Json::Obj(vec![
                    ("scheme".to_string(), scheme_to_json(*scheme)),
                    ("coverage".to_string(), Json::f64(*coverage)),
                ])
            })
            .collect(),
    );
    let faults = Json::Obj(vec![
        ("drops".to_string(), Json::u64(r.fault_stats.drops.get())),
        (
            "duplicates".to_string(),
            Json::u64(r.fault_stats.duplicates.get()),
        ),
        ("delays".to_string(), Json::u64(r.fault_stats.delays.get())),
        (
            "corruptions".to_string(),
            Json::u64(r.fault_stats.corruptions.get()),
        ),
        (
            "desyncs".to_string(),
            Json::u64(r.fault_stats.desyncs.get()),
        ),
        (
            "mem_replies".to_string(),
            Json::u64(r.fault_stats.mem_replies.get()),
        ),
    ]);
    let resync = Json::Obj(vec![
        (
            "desyncs_detected".to_string(),
            Json::u64(r.resync.desyncs_detected),
        ),
        (
            "resyncs_completed".to_string(),
            Json::u64(r.resync.resyncs_completed),
        ),
        (
            "fallback_msgs".to_string(),
            Json::u64(r.resync.fallback_msgs),
        ),
    ]);
    Json::Obj(vec![
        ("app".to_string(), Json::str(&r.app)),
        ("scheme".to_string(), scheme_to_json(r.scheme)),
        (
            "interconnect".to_string(),
            interconnect_to_json(r.interconnect),
        ),
        ("cycles".to_string(), Json::u64(r.cycles)),
        ("time_s".to_string(), Json::f64(r.time_s)),
        ("energy".to_string(), energy),
        ("coverage".to_string(), Json::f64(r.coverage)),
        ("messages".to_string(), messages),
        (
            "network_messages".to_string(),
            Json::u64(r.network_messages),
        ),
        ("instructions".to_string(), Json::u64(r.instructions)),
        ("l1_miss_rate".to_string(), Json::f64(r.l1_miss_rate)),
        (
            "critical_latency".to_string(),
            Json::f64(r.critical_latency),
        ),
        ("probe_coverages".to_string(), probes),
        (
            "mem_stall_cycles".to_string(),
            Json::u64(r.mem_stall_cycles),
        ),
        (
            "barrier_stall_cycles".to_string(),
            Json::u64(r.barrier_stall_cycles),
        ),
        ("mem_reads".to_string(), Json::u64(r.mem_reads)),
        ("l2_recalls".to_string(), Json::u64(r.l2_recalls)),
        ("fault_stats".to_string(), faults),
        ("resync".to_string(), resync),
        (
            "sanitizer_sweeps".to_string(),
            Json::u64(r.sanitizer_sweeps),
        ),
    ])
}

/// Decode a journal row back into the exact [`SimResult`] it encoded.
pub fn result_from_json(j: &Json) -> Result<SimResult, String> {
    let energy_obj = need(j, "energy")?;
    let energy = EnergyBreakdown {
        core_dynamic: need_joules(energy_obj, "core_dynamic")?,
        core_static: need_joules(energy_obj, "core_static")?,
        link_dynamic: need_joules(energy_obj, "link_dynamic")?,
        link_static: need_joules(energy_obj, "link_static")?,
        router_dynamic: need_joules(energy_obj, "router_dynamic")?,
        compression_dynamic: need_joules(energy_obj, "compression_dynamic")?,
        compression_static: need_joules(energy_obj, "compression_static")?,
    };
    let messages = need(j, "messages")?
        .as_arr()
        .ok_or_else(|| "field `messages` is not an array".to_string())?
        .iter()
        .map(|m| {
            Ok(ClassCount {
                class: class_from_label(need_str(m, "class")?)?,
                count: need_u64(m, "count")?,
                bytes: need_u64(m, "bytes")?,
                mean_latency: need_f64(m, "mean_latency")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let probe_coverages = need(j, "probe_coverages")?
        .as_arr()
        .ok_or_else(|| "field `probe_coverages` is not an array".to_string())?
        .iter()
        .map(|p| {
            Ok((
                scheme_from_json(need(p, "scheme")?)?,
                need_f64(p, "coverage")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let faults_obj = need(j, "fault_stats")?;
    let fault_stats = FaultStats {
        drops: need_counter(faults_obj, "drops")?,
        duplicates: need_counter(faults_obj, "duplicates")?,
        delays: need_counter(faults_obj, "delays")?,
        corruptions: need_counter(faults_obj, "corruptions")?,
        desyncs: need_counter(faults_obj, "desyncs")?,
        mem_replies: need_counter(faults_obj, "mem_replies")?,
    };
    let resync_obj = need(j, "resync")?;
    let resync = ResyncStats {
        desyncs_detected: need_u64(resync_obj, "desyncs_detected")?,
        resyncs_completed: need_u64(resync_obj, "resyncs_completed")?,
        fallback_msgs: need_u64(resync_obj, "fallback_msgs")?,
    };
    Ok(SimResult {
        app: need_str(j, "app")?.to_string(),
        scheme: scheme_from_json(need(j, "scheme")?)?,
        interconnect: interconnect_from_json(need(j, "interconnect")?)?,
        cycles: need_u64(j, "cycles")?,
        time_s: need_f64(j, "time_s")?,
        energy,
        coverage: need_f64(j, "coverage")?,
        messages,
        network_messages: need_u64(j, "network_messages")?,
        instructions: need_u64(j, "instructions")?,
        l1_miss_rate: need_f64(j, "l1_miss_rate")?,
        critical_latency: need_f64(j, "critical_latency")?,
        probe_coverages,
        mem_stall_cycles: need_u64(j, "mem_stall_cycles")?,
        barrier_stall_cycles: need_u64(j, "barrier_stall_cycles")?,
        mem_reads: need_u64(j, "mem_reads")?,
        l2_recalls: need_u64(j, "l2_recalls")?,
        fault_stats,
        resync,
        sanitizer_sweeps: need_u64(j, "sanitizer_sweeps")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ConfigSpec;

    fn tiny_result() -> SimResult {
        let cfg = SimConfig::new(
            InterconnectChoice::Heterogeneous(VlWidth::FourBytes),
            CompressionScheme::Dbrc {
                entries: 16,
                low_bytes: 1,
            },
        );
        let app = workloads::apps::fft();
        CmpSimulator::new(cfg, &app, 0xD5A1_F00D, 0.002)
            .run()
            .expect("tiny run completes")
    }

    /// The codec is lossless: encode → render → parse → decode →
    /// re-encode produces byte-identical JSON, covering every u64 and
    /// f64 field of a real run.
    #[test]
    fn result_codec_round_trips_bit_identically() {
        let r = tiny_result();
        let encoded = result_to_json(&r).render();
        let parsed = Json::parse(&encoded).expect("rendered JSON parses");
        let decoded = result_from_json(&parsed).expect("row decodes");
        assert_eq!(result_to_json(&decoded).render(), encoded);
        assert_eq!(decoded.cycles, r.cycles);
        assert_eq!(decoded.network_messages, r.network_messages);
        assert_eq!(decoded.time_s.to_bits(), r.time_s.to_bits());
        assert_eq!(
            decoded.energy.link_dynamic.value().to_bits(),
            r.energy.link_dynamic.value().to_bits()
        );
        assert_eq!(decoded.link_ed2p().to_bits(), r.link_ed2p().to_bits());
    }

    #[test]
    fn scheme_codec_round_trips_every_variant() {
        for scheme in [
            CompressionScheme::None,
            CompressionScheme::Dbrc {
                entries: 16,
                low_bytes: 1,
            },
            CompressionScheme::Stride { low_bytes: 2 },
            CompressionScheme::Perfect { low_bytes: 2 },
            CompressionScheme::Multicast {
                entries: 4,
                low_bytes: 2,
            },
        ] {
            let encoded = scheme_to_json(scheme).render();
            let parsed = Json::parse(&encoded).expect("scheme JSON parses");
            assert_eq!(
                scheme_from_json(&parsed).expect("scheme decodes"),
                scheme,
                "round trip lost {scheme:?}"
            );
        }
    }

    #[test]
    fn codec_rejects_rows_with_missing_or_mistyped_fields() {
        let r = tiny_result();
        let Json::Obj(mut fields) = result_to_json(&r) else {
            panic!("rows are objects")
        };
        fields.retain(|(k, _)| k != "cycles");
        assert!(result_from_json(&Json::Obj(fields.clone())).is_err());
        fields.push(("cycles".to_string(), Json::str("not-a-number")));
        assert!(result_from_json(&Json::Obj(fields)).is_err());
    }

    #[test]
    fn reseed_is_identity_on_the_first_attempt_and_diverges_after() {
        assert_eq!(reseed(42, 0), 42);
        let (a, b, c) = (reseed(42, 1), reseed(42, 2), reseed(43, 1));
        assert_ne!(a, 42);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn with_retries_counts_attempts_and_stops_at_the_cap() {
        let mut calls = 0;
        let r: Result<(), _> = with_retries(2, Duration::ZERO, |n| {
            assert_eq!(n, calls);
            calls += 1;
            Err::<(), _>("nope")
        });
        assert_eq!(calls, 3);
        assert_eq!(r.unwrap_err(), (3, "nope"));

        let r = with_retries(5, Duration::ZERO, |n| {
            if n < 2 {
                Err("transient")
            } else {
                Ok(n)
            }
        });
        assert_eq!(r.unwrap(), 2);
    }

    /// An impossible wall-clock deadline aborts the cell with a
    /// structured `WallDeadline`, not a hang.
    #[test]
    fn wall_deadline_aborts_with_a_structured_error() {
        let cfg = SimConfig::baseline();
        let app = workloads::apps::fft();
        let policy = RunPolicy {
            wall_deadline: Some(Duration::ZERO),
            ..RunPolicy::default()
        };
        let err = run_supervised(cfg, &app, 0xD5A1_F00D, 0.01, &policy)
            .expect_err("a zero deadline must expire");
        match err.error {
            SimError::WallDeadline { limit_ms, .. } => assert_eq!(limit_ms, 0),
            other => panic!("expected WallDeadline, got {other}"),
        }
    }

    /// A cycle budget tightens the config's own cap and surfaces as the
    /// engine's structured cycle-cap error.
    #[test]
    fn cycle_budget_caps_the_run() {
        let cfg = SimConfig::baseline();
        let app = workloads::apps::fft();
        let policy = RunPolicy {
            cycle_budget: Some(1_000),
            ..RunPolicy::default()
        };
        let err = run_supervised(cfg, &app, 0xD5A1_F00D, 0.01, &policy)
            .expect_err("a 1000-cycle budget cannot finish fft");
        match err.error {
            SimError::Watchdog { cycle } => assert!(cycle >= 1_000),
            other => panic!("expected the cycle cap, got {other}"),
        }
    }

    #[test]
    fn campaign_meta_fingerprint_tracks_the_spec_list() {
        let cmp = CmpConfig::default();
        let app = workloads::apps::fft();
        let spec = |seed| RunSpec {
            app: app.clone(),
            config: ConfigSpec::baseline(),
            seed,
            scale: 0.002,
        };
        let a = campaign_meta(&cmp, &[spec(1)]);
        let b = campaign_meta(&cmp, &[spec(1)]);
        let c = campaign_meta(&cmp, &[spec(2)]);
        assert_eq!(a.config_hash, b.config_hash);
        assert_ne!(a.config_hash, c.config_hash);
        assert_eq!(a.cells, 1);
    }
}
