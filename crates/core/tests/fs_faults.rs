//! The durability contract of the checkpoint disk tier, exercised
//! against the seeded fault seam ([`cmp_common::fsx`]) and against
//! hand-corrupted files:
//!
//! * every injected fault class — torn write, ENOSPC, short read, bit
//!   flip, rename-then-crash — ends in one of exactly two outcomes: a
//!   **bit-identical** warm start, or a structured fallback (store
//!   error / quarantine) with the run continuing fresh. Never a panic,
//!   never silently wrong state;
//! * a restarted store rebuilds its index from disk, adopts completed
//!   spills, deletes `.tmp` residue, and warms the next run from the
//!   previous process's checkpoints without changing a single bit;
//! * corruption is quarantined (kept for forensics) under hard count
//!   and byte bounds, pruned oldest-first;
//! * the byte budget evicts oldest-first and never the newest file;
//! * one configuration spills once, however many campaigns or
//!   restarts share it.

use std::path::PathBuf;
use std::time::Duration;

use addr_compression::CompressionScheme;
use cmp_common::fsx::{Fs, FsFaultConfig};
use tcmp_core::supervisor::{run_supervised_cached, warm_key, RunPolicy};
use tcmp_core::{
    CheckpointCache, CmpSimulator, DiskConfig, DiskLoad, DiskStore, InterconnectChoice, SimConfig,
};
use wire_model::wires::VlWidth;
use workloads::profile::AppProfile;

const SEED: u64 = 0xD5A1_F00D;
const SCALE: f64 = 0.002;
const WARM: u64 = 20_000;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcmp-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tiny_cfg() -> SimConfig {
    SimConfig::new(
        InterconnectChoice::Heterogeneous(VlWidth::FourBytes),
        CompressionScheme::Dbrc {
            entries: 16,
            low_bytes: 1,
        },
    )
}

fn app() -> AppProfile {
    workloads::apps::fft()
}

/// A simulator advanced to the warm point, plus its snapshot there.
fn warm_snapshot(cfg: &SimConfig) -> tcmp_core::MachineSnapshot {
    let a = app();
    let mut sim = CmpSimulator::new(cfg.clone(), &a, SEED, SCALE);
    while sim.cycle() < WARM {
        assert!(sim.step().expect("prefix steps"), "prefix must not finish");
    }
    sim.snapshot()
}

fn policy() -> RunPolicy {
    RunPolicy {
        wall_deadline: Some(Duration::from_secs(300)),
        ..RunPolicy::default()
    }
}

/// Spill on one store, reopen a second store on the same root (a
/// process restart), and the warm start it serves is bit-identical:
/// same digest, same re-encoded bytes, and a supervised run warmed
/// from it produces exactly the cold run's numbers.
#[test]
fn warm_start_survives_restart_bit_identically() {
    let root = scratch_dir("restart");
    let cfg = tiny_cfg();
    let a = app();
    let key = warm_key(&cfg, &a, SEED, SCALE, WARM);

    // Cold reference: no cache at all.
    let (cold, _) = run_supervised_cached(cfg.clone(), &a, SEED, SCALE, &policy(), None)
        .expect("cold run completes");

    // First lifetime: simulate the prefix, spill to disk.
    {
        let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).expect("open");
        let cache = CheckpointCache::with_disk(4, store);
        let (first, _) = run_supervised_cached(
            cfg.clone(),
            &a,
            SEED,
            SCALE,
            &policy(),
            Some((&cache, WARM)),
        )
        .expect("first run completes");
        assert_eq!(first.cycles, cold.cycles, "caching never changes numbers");
        let d = cache.disk().expect("disk tier").counters();
        assert_eq!(d.stores, 1, "one spill");
    }

    // Second lifetime: empty memory tier, same root. The disk file
    // must warm the run and the result must match the cold one bit
    // for bit.
    let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).expect("reopen");
    assert!(store.contains(&key), "restart scan adopts the spill");
    let cache = CheckpointCache::with_disk(4, store);
    let (second, warm) = run_supervised_cached(
        cfg.clone(),
        &a,
        SEED,
        SCALE,
        &policy(),
        Some((&cache, WARM)),
    )
    .expect("second run completes");
    assert_eq!(
        warm.label(),
        "warmed",
        "the restarted process warm-starts from disk"
    );
    assert_eq!(second.cycles, cold.cycles);
    assert_eq!(second.time_s.to_bits(), cold.time_s.to_bits());
    assert_eq!(second.network_messages, cold.network_messages);
    let d = cache.disk().expect("disk tier").counters();
    assert_eq!((d.hits, d.quarantined), (1, 0));
    // The verified state also re-encodes to the digest it was stored
    // under: nothing drifted on the way through the file.
    let mut template = warm_snapshot(&cfg);
    let direct = warm_snapshot(&cfg);
    assert!(matches!(
        cache.disk().unwrap().load_into(&key, &mut template),
        DiskLoad::Hit
    ));
    assert_eq!(template.digest(), direct.digest());
    assert_eq!(template.save_bytes(), direct.save_bytes());
}

/// The fault matrix: each injectable class, armed at certainty, against
/// the spill and load sites. The invariant under every fault is the
/// same — no panic, and either a verified bit-identical hit or a
/// structured fallback (store error, quarantine, miss) that leaves the
/// store usable.
#[test]
fn every_fault_class_degrades_to_structured_fallback_never_panic() {
    let cfg = tiny_cfg();
    let a = app();
    let key = warm_key(&cfg, &a, SEED, SCALE, WARM);
    let good = warm_snapshot(&cfg);

    // (spec, expect_spill_to_fail)
    let classes: &[(&str, bool)] = &[
        ("seed=1,torn=1,max=1", true),
        ("seed=2,enospc=1,max=1", true),
        // Rename-then-crash reports failure but the complete file lands
        // on disk; the store counts an error and the next scan adopts
        // the orphan — both outcomes are legitimate.
        ("seed=3,rename=1,max=1", true),
        ("seed=4,short=1,max=1", false),
        ("seed=5,flip=1,max=1", false),
    ];
    for (spec, spill_fails) in classes {
        let root = scratch_dir(&format!(
            "fault-{}",
            spec.split(',').nth(1).unwrap().replace('=', "")
        ));
        let fs = Fs::faulty(FsFaultConfig::parse(spec).expect("spec parses"));
        let store = DiskStore::open(fs, &root, DiskConfig::default())
            .unwrap_or_else(|e| panic!("{spec}: open must survive an armed seam: {e}"));

        store.store(&key, &good);
        let c = store.counters();
        if *spill_fails {
            assert_eq!(
                (c.stores, c.store_errors),
                (0, 1),
                "{spec}: the faulted spill is a counted store error"
            );
            assert!(
                !root.join(format!("{}-{:016x}.ckpt", key.0, key.1)).exists()
                    || *spec == "seed=3,rename=1,max=1",
                "{spec}: no torn checkpoint may be left in place"
            );
        } else {
            assert_eq!((c.stores, c.store_errors), (1, 0), "{spec}: spill is clean");
        }

        // Load through the (possibly exhausted) seam. With max=1 the
        // fault budget is spent on the write classes, so those see
        // either a miss (nothing persisted) or, for rename-crash, a
        // miss now and an orphan adopted at next scan; the read classes
        // (short, flip) corrupt this read and MUST quarantine.
        let mut template = warm_snapshot(&cfg);
        match store.load_into(&key, &mut template) {
            DiskLoad::Hit => {
                assert_eq!(
                    template.digest(),
                    good.digest(),
                    "{spec}: a hit must be bit-identical"
                );
            }
            DiskLoad::Miss => assert!(
                *spill_fails,
                "{spec}: a clean spill must not be lost on load"
            ),
            DiskLoad::Quarantined => {
                let c = store.counters();
                assert_eq!(c.quarantined, 1, "{spec}: quarantine is counted");
                let (files, bytes) = store.quarantine_usage();
                assert!(
                    files == 1 && bytes > 0,
                    "{spec}: the corrupt artifact is preserved for forensics"
                );
            }
        }

        // After the fault budget is spent the store must work: spill
        // and warm a fresh key end to end.
        store.store(&key, &good);
        let mut template = warm_snapshot(&cfg);
        match store.load_into(&key, &mut template) {
            DiskLoad::Hit => assert_eq!(template.digest(), good.digest()),
            other => panic!(
                "{spec}: post-budget store+load must hit, got {}",
                match other {
                    DiskLoad::Miss => "miss",
                    DiskLoad::Quarantined => "quarantined",
                    DiskLoad::Hit => unreachable!(),
                }
            ),
        }
    }
}

/// Hand-corrupted files — truncation, bit rot, wrong magic, a file
/// renamed under the wrong key — are all quarantined with the caller
/// falling back to a miss-equivalent, and a restart scan applies the
/// same judgement to what it finds on disk.
#[test]
fn hand_corrupted_files_are_quarantined_on_load_and_on_scan() {
    let cfg = tiny_cfg();
    let a = app();
    let key = warm_key(&cfg, &a, SEED, SCALE, WARM);
    let good = warm_snapshot(&cfg);
    let path_of = |root: &PathBuf| root.join(format!("{}-{:016x}.ckpt", key.0, key.1));

    let corruptions: &[(&str, fn(&mut Vec<u8>))] = &[
        ("truncate", |b| b.truncate(b.len() / 2)),
        ("bitrot", |b| {
            let mid = b.len() / 2;
            b[mid] ^= 0x40;
        }),
        ("magic", |b| b[0] ^= 0xFF),
    ];
    for (tag, corrupt) in corruptions {
        let root = scratch_dir(&format!("corrupt-{tag}"));
        {
            let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).unwrap();
            store.store(&key, &good);
        }
        let path = path_of(&root);
        let mut bytes = std::fs::read(&path).expect("read spill");
        corrupt(&mut bytes);
        std::fs::write(&path, &bytes).expect("corrupt spill");

        // A scan-time detection (short of injected read faults the scan
        // reads clean bytes, so it sees the corruption immediately)…
        let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).unwrap();
        assert!(
            !store.contains(&key),
            "{tag}: scan must not adopt a corrupt file"
        );
        // …moves the artifact to quarantine and leaves the slot empty.
        let (files, _) = store.quarantine_usage();
        assert_eq!(files, 1, "{tag}: artifact preserved");
        assert!(!path.exists(), "{tag}: corrupt file removed from the store");
        let mut template = warm_snapshot(&cfg);
        assert!(
            matches!(store.load_into(&key, &mut template), DiskLoad::Miss),
            "{tag}: after quarantine the key is a plain miss"
        );
    }

    // A structurally valid file filed under the wrong name: the header
    // key wins and the file is quarantined at scan.
    let root = scratch_dir("corrupt-wrongname");
    {
        let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).unwrap();
        store.store(&key, &good);
    }
    let wrong = root.join(format!("{}-{:016x}.ckpt", key.0, key.1 + 1));
    std::fs::rename(path_of(&root), &wrong).expect("misfile");
    let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).unwrap();
    assert!(!store.contains(&(key.0.clone(), key.1 + 1)));
    assert_eq!(store.quarantine_usage().0, 1);
}

/// The quarantine is bounded: beyond the configured file count the
/// oldest artifacts are pruned (and counted), never the newest.
#[test]
fn quarantine_is_pruned_oldest_first_under_its_bounds() {
    let root = scratch_dir("qbound");
    let cfg = tiny_cfg();
    let a = app();
    let good = warm_snapshot(&cfg);
    let disk_cfg = DiskConfig {
        quarantine_max_files: 2,
        ..DiskConfig::default()
    };
    let store = DiskStore::open(Fs::real(), &root, disk_cfg).unwrap();
    for i in 0..5u64 {
        let key = warm_key(&cfg, &a, SEED + i, SCALE, WARM);
        store.store(&key, &good);
        let path = root.join(format!("{}-{:016x}.ckpt", key.0, key.1));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut template = warm_snapshot(&cfg);
        assert!(matches!(
            store.load_into(&key, &mut template),
            DiskLoad::Quarantined
        ));
    }
    let c = store.counters();
    assert_eq!(c.quarantined, 5);
    assert_eq!(c.quarantine_pruned, 3, "three oldest pruned");
    let (files, _) = store.quarantine_usage();
    assert_eq!(files, 2, "bound holds");
    let kept: Vec<String> = std::fs::read_dir(root.join("quarantine"))
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(kept.len(), 2);
    assert!(
        kept.iter().all(|n| n.starts_with("q0000000")),
        "sequence-stamped names: {kept:?}"
    );
    let mut sorted = kept.clone();
    sorted.sort();
    assert!(
        sorted[0] > "q00000003".to_string(),
        "the survivors are the newest artifacts: {sorted:?}"
    );
}

/// FIFO byte-budget eviction: oldest spills go first, the newest is
/// kept even when it alone exceeds the budget.
#[test]
fn byte_budget_evicts_oldest_and_never_the_newest() {
    let root = scratch_dir("evict");
    let cfg = tiny_cfg();
    let a = app();
    let good = warm_snapshot(&cfg);
    let one_file = {
        let probe = scratch_dir("evict-probe");
        let store = DiskStore::open(Fs::real(), &probe, DiskConfig::default()).unwrap();
        store.store(&warm_key(&cfg, &a, SEED, SCALE, WARM), &good);
        store.counters().resident_bytes
    };
    assert!(one_file > 0);
    // Room for two files, not three.
    let disk_cfg = DiskConfig {
        byte_budget: one_file * 2 + one_file / 2,
        ..DiskConfig::default()
    };
    let store = DiskStore::open(Fs::real(), &root, disk_cfg).unwrap();
    let keys: Vec<_> = (0..3u64)
        .map(|i| warm_key(&cfg, &a, SEED + i, SCALE, WARM))
        .collect();
    for key in &keys {
        store.store(key, &good);
    }
    let c = store.counters();
    assert_eq!(c.evicted, 1, "one eviction to fit the third spill");
    assert!(!store.contains(&keys[0]), "oldest evicted");
    assert!(store.contains(&keys[1]) && store.contains(&keys[2]));

    // A budget smaller than a single checkpoint still keeps the newest.
    let tiny_root = scratch_dir("evict-tiny");
    let tiny = DiskStore::open(
        Fs::real(),
        &tiny_root,
        DiskConfig {
            byte_budget: 1,
            ..DiskConfig::default()
        },
    )
    .unwrap();
    tiny.store(&keys[0], &good);
    tiny.store(&keys[1], &good);
    assert!(
        tiny.contains(&keys[1]),
        "the newest spill survives any budget"
    );
    assert!(!tiny.contains(&keys[0]));
}

/// One configuration simulates its prefix once, ever: a second store of
/// the same key — same campaign, another campaign, or after a restart —
/// is a counted dedup skip, and `.tmp` residue from a crashed spill is
/// swept at scan.
#[test]
fn spills_dedup_by_key_and_scan_sweeps_tmp_residue() {
    let root = scratch_dir("dedup");
    let cfg = tiny_cfg();
    let a = app();
    let key = warm_key(&cfg, &a, SEED, SCALE, WARM);
    let good = warm_snapshot(&cfg);
    {
        let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).unwrap();
        store.store(&key, &good);
        store.store(&key, &good);
        let c = store.counters();
        assert_eq!((c.stores, c.dedup_skips), (1, 1));
    }
    // A crashed predecessor's torn spill…
    let residue = root.join("deadbeef00000000-0000000000004e20.1.tmp");
    std::fs::write(&residue, b"half a checkpoint").unwrap();
    let store = DiskStore::open(Fs::real(), &root, DiskConfig::default()).unwrap();
    assert!(!residue.exists(), "scan sweeps .tmp residue");
    // …while the completed spill is adopted and still dedups.
    store.store(&key, &good);
    let c = store.counters();
    assert_eq!((c.stores, c.dedup_skips, c.resident_files), (0, 1, 1));
}

/// CSV finalisation through the seam is atomic under injected faults:
/// a torn write or ENOSPC surfaces as an error while the target path
/// holds either the previous complete rendering or nothing — never a
/// prefix.
#[test]
fn csv_finalisation_is_atomic_under_injected_faults() {
    let root = scratch_dir("csv");
    let mut t = tcmp_core::report::TableBuilder::new("Demo", &["app", "value"]);
    t.row(vec!["FFT".into(), "0.78".into()]);
    let target = root.join("results.csv");

    // Establish a good version first.
    t.write_csv_stamped_on(&Fs::real(), &target, "stamp-v1")
        .expect("clean write");
    let v1 = std::fs::read_to_string(&target).unwrap();
    assert!(v1.starts_with("# stamp-v1"));

    for spec in ["seed=11,torn=1,max=1", "seed=12,enospc=1,max=1"] {
        let fs = Fs::faulty(FsFaultConfig::parse(spec).unwrap());
        let err = t
            .write_csv_stamped_on(&fs, &target, "stamp-v2")
            .expect_err("injected fault must surface as an error");
        assert!(!err.to_string().is_empty());
        assert_eq!(
            std::fs::read_to_string(&target).unwrap(),
            v1,
            "{spec}: the previous complete CSV survives a faulted rewrite"
        );
    }

    // Budget spent: the rewrite goes through and replaces atomically.
    let fs = Fs::faulty(FsFaultConfig::parse("seed=11,torn=1,max=0").unwrap());
    t.write_csv_stamped_on(&fs, &target, "stamp-v3").unwrap();
    assert!(std::fs::read_to_string(&target)
        .unwrap()
        .starts_with("# stamp-v3"));
}
