//! Trace operations and the streaming source abstraction.

use cmp_common::persist::{ByteReader, ByteWriter, Persist, PersistError, PersistState};
use cmp_common::types::Addr;

/// One operation of a core's instruction stream, at the granularity the
//  memory system cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions (retire at the issue width).
    Compute(u32),
    /// Load from a **line address**.
    Load(Addr),
    /// Store to a **line address**.
    Store(Addr),
    /// Global barrier number `id` (all cores must arrive).
    Barrier(u32),
}

impl TraceOp {
    /// Instructions this op contributes to the instruction count.
    pub fn instructions(&self) -> u64 {
        match *self {
            TraceOp::Compute(n) => n as u64,
            TraceOp::Load(_) | TraceOp::Store(_) => 1,
            TraceOp::Barrier(_) => 0,
        }
    }

    /// The line touched, if this is a memory operation.
    pub fn line(&self) -> Option<Addr> {
        match *self {
            TraceOp::Load(a) | TraceOp::Store(a) => Some(a),
            _ => None,
        }
    }
}

/// A streaming producer of trace operations. Generators implement this to
/// avoid materialising multi-million-op traces. `Send` because the epoch
/// scheduler steps cores (and therefore pulls from their op sources) on
/// worker threads.
pub trait OpSource: Send {
    /// The next operation, or `None` when the stream ends.
    fn next_op(&mut self) -> Option<TraceOp>;

    /// Clone the source mid-stream, including its exact position and any
    /// generator state, so a checkpointed core resumes on an identical
    /// op stream (the snapshot/restore seam for trait objects).
    fn clone_box(&self) -> Box<dyn OpSource>;

    /// Append this source's mutable state (position, generator cursors)
    /// for an on-disk checkpoint. The matching [`OpSource::load_state`]
    /// is always called on a freshly built source of the same concrete
    /// type and configuration, so no type tag travels with the bytes.
    fn save_state(&self, w: &mut ByteWriter);

    /// Overwrite this source's mutable state from checkpoint bytes.
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError>;
}

impl PersistState for Box<dyn OpSource> {
    fn save_state(&self, w: &mut ByteWriter) {
        (**self).save_state(w);
    }
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError> {
        (**self).load_state(r)
    }
}

impl Persist for TraceOp {
    fn save(&self, w: &mut ByteWriter) {
        match *self {
            TraceOp::Compute(n) => {
                w.u8(0);
                w.u32(n);
            }
            TraceOp::Load(a) => {
                w.u8(1);
                w.u64(a);
            }
            TraceOp::Store(a) => {
                w.u8(2);
                w.u64(a);
            }
            TraceOp::Barrier(id) => {
                w.u8(3);
                w.u32(id);
            }
        }
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => TraceOp::Compute(r.u32()?),
            1 => TraceOp::Load(r.u64()?),
            2 => TraceOp::Store(r.u64()?),
            3 => TraceOp::Barrier(r.u32()?),
            _ => return Err(r.err("invalid TraceOp tag")),
        })
    }
}

/// An `OpSource` over a pre-built vector (tests, microbenchmarks).
#[derive(Clone)]
pub struct SliceSource {
    ops: std::vec::IntoIter<TraceOp>,
}

impl SliceSource {
    /// Wrap a vector of operations.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        SliceSource {
            ops: ops.into_iter(),
        }
    }
}

impl OpSource for SliceSource {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.ops.next()
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut ByteWriter) {
        // the un-consumed tail of the trace *is* the position
        self.ops.as_slice().to_vec().save(w);
    }

    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError> {
        self.ops = Vec::<TraceOp>::load(r)?.into_iter();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_instruction_accounting() {
        assert_eq!(TraceOp::Compute(7).instructions(), 7);
        assert_eq!(TraceOp::Load(1).instructions(), 1);
        assert_eq!(TraceOp::Store(1).instructions(), 1);
        assert_eq!(TraceOp::Barrier(0).instructions(), 0);
    }

    #[test]
    fn line_extraction() {
        assert_eq!(TraceOp::Load(42).line(), Some(42));
        assert_eq!(TraceOp::Store(42).line(), Some(42));
        assert_eq!(TraceOp::Compute(1).line(), None);
    }

    #[test]
    fn slice_source_streams_in_order() {
        let mut s = SliceSource::new(vec![TraceOp::Compute(1), TraceOp::Load(2)]);
        assert_eq!(s.next_op(), Some(TraceOp::Compute(1)));
        assert_eq!(s.next_op(), Some(TraceOp::Load(2)));
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn clone_box_preserves_stream_position() {
        let mut s = SliceSource::new(vec![TraceOp::Compute(1), TraceOp::Load(2)]);
        s.next_op();
        let mut copy = s.clone_box();
        assert_eq!(copy.next_op(), Some(TraceOp::Load(2)));
        assert_eq!(s.next_op(), Some(TraceOp::Load(2)), "original unperturbed");
    }
}
