//! Trace operations and the streaming source abstraction.

use cmp_common::types::Addr;

/// One operation of a core's instruction stream, at the granularity the
//  memory system cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions (retire at the issue width).
    Compute(u32),
    /// Load from a **line address**.
    Load(Addr),
    /// Store to a **line address**.
    Store(Addr),
    /// Global barrier number `id` (all cores must arrive).
    Barrier(u32),
}

impl TraceOp {
    /// Instructions this op contributes to the instruction count.
    pub fn instructions(&self) -> u64 {
        match *self {
            TraceOp::Compute(n) => n as u64,
            TraceOp::Load(_) | TraceOp::Store(_) => 1,
            TraceOp::Barrier(_) => 0,
        }
    }

    /// The line touched, if this is a memory operation.
    pub fn line(&self) -> Option<Addr> {
        match *self {
            TraceOp::Load(a) | TraceOp::Store(a) => Some(a),
            _ => None,
        }
    }
}

/// A streaming producer of trace operations. Generators implement this to
/// avoid materialising multi-million-op traces. `Send` because the epoch
/// scheduler steps cores (and therefore pulls from their op sources) on
/// worker threads.
pub trait OpSource: Send {
    /// The next operation, or `None` when the stream ends.
    fn next_op(&mut self) -> Option<TraceOp>;

    /// Clone the source mid-stream, including its exact position and any
    /// generator state, so a checkpointed core resumes on an identical
    /// op stream (the snapshot/restore seam for trait objects).
    fn clone_box(&self) -> Box<dyn OpSource>;
}

/// An `OpSource` over a pre-built vector (tests, microbenchmarks).
#[derive(Clone)]
pub struct SliceSource {
    ops: std::vec::IntoIter<TraceOp>,
}

impl SliceSource {
    /// Wrap a vector of operations.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        SliceSource {
            ops: ops.into_iter(),
        }
    }
}

impl OpSource for SliceSource {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.ops.next()
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_instruction_accounting() {
        assert_eq!(TraceOp::Compute(7).instructions(), 7);
        assert_eq!(TraceOp::Load(1).instructions(), 1);
        assert_eq!(TraceOp::Store(1).instructions(), 1);
        assert_eq!(TraceOp::Barrier(0).instructions(), 0);
    }

    #[test]
    fn line_extraction() {
        assert_eq!(TraceOp::Load(42).line(), Some(42));
        assert_eq!(TraceOp::Store(42).line(), Some(42));
        assert_eq!(TraceOp::Compute(1).line(), None);
    }

    #[test]
    fn slice_source_streams_in_order() {
        let mut s = SliceSource::new(vec![TraceOp::Compute(1), TraceOp::Load(2)]);
        assert_eq!(s.next_op(), Some(TraceOp::Compute(1)));
        assert_eq!(s.next_op(), Some(TraceOp::Load(2)));
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn clone_box_preserves_stream_position() {
        let mut s = SliceSource::new(vec![TraceOp::Compute(1), TraceOp::Load(2)]);
        s.next_op();
        let mut copy = s.clone_box();
        assert_eq!(copy.next_op(), Some(TraceOp::Load(2)));
        assert_eq!(s.next_op(), Some(TraceOp::Load(2)), "original unperturbed");
    }
}
