//! Barrier bookkeeping shared by the full-system simulator.

/// Arrival tracking for one global barrier epoch.
#[derive(Clone, Debug)]
pub struct BarrierState {
    participants: usize,
    arrived: u64,
    epoch: u32,
}

cmp_common::impl_snapshot_clone!(BarrierState);

impl BarrierState {
    /// A barrier over `participants` cores (≤ 64).
    pub fn new(participants: usize) -> Self {
        assert!((1..=64).contains(&participants));
        BarrierState {
            participants,
            arrived: 0,
            epoch: 0,
        }
    }

    /// Core `core` arrived at barrier `id`. Returns `true` when this was
    /// the last arrival — the caller must then release every core and the
    /// state resets for the next epoch.
    pub fn arrive(&mut self, core: usize, id: u32) -> bool {
        debug_assert_eq!(id, self.epoch, "core {core} at wrong barrier epoch");
        let bit = 1u64 << core;
        debug_assert_eq!(self.arrived & bit, 0, "double arrival of core {core}");
        self.arrived |= bit;
        if self.arrived.count_ones() as usize == self.participants {
            self.arrived = 0;
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Cores currently parked at the barrier.
    pub fn waiting(&self) -> u32 {
        self.arrived.count_ones()
    }

    /// The barrier id cores should arrive at next.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_on_last_arrival_and_advances_epoch() {
        let mut b = BarrierState::new(3);
        assert!(!b.arrive(0, 0));
        assert!(!b.arrive(2, 0));
        assert_eq!(b.waiting(), 2);
        assert!(b.arrive(1, 0));
        assert_eq!(b.waiting(), 0);
        assert_eq!(b.epoch(), 1);
        // next epoch works the same
        assert!(!b.arrive(1, 1));
        assert!(!b.arrive(0, 1));
        assert!(b.arrive(2, 1));
        assert_eq!(b.epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "double arrival")]
    fn double_arrival_is_a_bug() {
        let mut b = BarrierState::new(2);
        b.arrive(0, 0);
        b.arrive(0, 0);
    }
}
