//! Barrier bookkeeping shared by the full-system simulator.

/// Arrival tracking for one global barrier epoch.
///
/// The arrival set is a multi-word bitmask, so a barrier spans any
/// mesh the machine description can build — the 16×16 and 32×32
/// meshes the sparse directory unlocks included, not just the 64
/// cores a single `u64` can name.
#[derive(Clone, Debug)]
pub struct BarrierState {
    participants: usize,
    arrived: Vec<u64>,
    waiting: u32,
    epoch: u32,
}

cmp_common::impl_snapshot_clone!(BarrierState);

/// The participant count is fixed by the machine shape and doubles as a
/// shape check at load time.
impl cmp_common::persist::PersistState for BarrierState {
    fn save_state(&self, w: &mut cmp_common::persist::ByteWriter) {
        use cmp_common::persist::Persist;
        w.usize(self.participants);
        self.arrived.save(w);
        w.u32(self.waiting);
        w.u32(self.epoch);
    }
    fn load_state(
        &mut self,
        r: &mut cmp_common::persist::ByteReader,
    ) -> Result<(), cmp_common::persist::PersistError> {
        use cmp_common::persist::Persist;
        if r.usize()? != self.participants {
            return Err(r.err("barrier participant count does not match machine shape"));
        }
        self.arrived = Persist::load(r)?;
        self.waiting = r.u32()?;
        self.epoch = r.u32()?;
        Ok(())
    }
}

impl BarrierState {
    /// A barrier over `participants` cores.
    pub fn new(participants: usize) -> Self {
        assert!(participants >= 1, "a barrier needs at least one core");
        BarrierState {
            participants,
            arrived: vec![0; participants.div_ceil(64)],
            waiting: 0,
            epoch: 0,
        }
    }

    /// Core `core` arrived at barrier `id`. Returns `true` when this was
    /// the last arrival — the caller must then release every core and the
    /// state resets for the next epoch.
    pub fn arrive(&mut self, core: usize, id: u32) -> bool {
        debug_assert_eq!(id, self.epoch, "core {core} at wrong barrier epoch");
        let (word, bit) = (core / 64, 1u64 << (core % 64));
        debug_assert_eq!(self.arrived[word] & bit, 0, "double arrival of core {core}");
        self.arrived[word] |= bit;
        self.waiting += 1;
        if self.waiting as usize == self.participants {
            self.arrived.fill(0);
            self.waiting = 0;
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Cores currently parked at the barrier.
    pub fn waiting(&self) -> u32 {
        self.waiting
    }

    /// The barrier id cores should arrive at next.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_on_last_arrival_and_advances_epoch() {
        let mut b = BarrierState::new(3);
        assert!(!b.arrive(0, 0));
        assert!(!b.arrive(2, 0));
        assert_eq!(b.waiting(), 2);
        assert!(b.arrive(1, 0));
        assert_eq!(b.waiting(), 0);
        assert_eq!(b.epoch(), 1);
        // next epoch works the same
        assert!(!b.arrive(1, 1));
        assert!(!b.arrive(0, 1));
        assert!(b.arrive(2, 1));
        assert_eq!(b.epoch(), 2);
    }

    #[test]
    fn spans_more_cores_than_one_mask_word() {
        // a 16×16 mesh: 256 cores across four mask words
        let mut b = BarrierState::new(256);
        for core in 0..255 {
            assert!(!b.arrive(core, 0), "core {core} must not release early");
        }
        assert_eq!(b.waiting(), 255);
        assert!(b.arrive(255, 0));
        assert_eq!(b.waiting(), 0);
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    #[should_panic(expected = "double arrival")]
    fn double_arrival_is_a_bug() {
        let mut b = BarrierState::new(2);
        b.arrive(0, 0);
        b.arrive(0, 0);
    }
}
