//! The in-order core state machine.

use cmp_common::types::{Addr, Cycle};

use crate::trace::{OpSource, TraceOp};

/// What the simulator should do for this core right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Probe the L1 for this access; then call exactly one of
    /// [`Core::mem_hit`], [`Core::mem_miss_started`] or
    /// [`Core::mem_retry`].
    Access { line: Addr, write: bool },
    /// The core arrived at barrier `id`; release it with
    /// [`Core::barrier_release`] when all cores have arrived.
    AtBarrier(u32),
    /// Nothing to do before `until` (computing, stalled or retrying).
    Idle { until: Cycle },
    /// The trace is exhausted.
    Done,
}

/// Execution statistics of one core.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Instructions retired (compute + memory ops).
    pub instructions: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Cycles spent blocked on L1 misses.
    pub mem_stall_cycles: u64,
    /// Cycles spent waiting at barriers.
    pub barrier_stall_cycles: u64,
    /// Cycle the core finished its trace (0 while running).
    pub finished_at: Cycle,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Ready to consume the next op at/after the stamped cycle.
    Ready { at: Cycle },
    /// Blocked on a miss since the stamped cycle.
    WaitingMem { since: Cycle, line: Addr },
    /// Parked at a barrier since the stamped cycle.
    AtBarrier { since: Cycle, id: u32 },
    /// Trace exhausted.
    Done,
}

/// L1 hit latency charged to the core (tag + data, Table 4).
pub const L1_HIT_LATENCY: Cycle = 2;

/// A trace-driven in-order core.
pub struct Core {
    source: Box<dyn OpSource>,
    issue_width: u32,
    state: State,
    /// A memory op that must be (re-)offered to the L1.
    pending: Option<TraceOp>,
    stats: CoreStats,
}

impl Clone for Core {
    fn clone(&self) -> Self {
        Core {
            source: self.source.clone_box(),
            issue_width: self.issue_width,
            state: self.state,
            pending: self.pending,
            stats: self.stats,
        }
    }
}

cmp_common::impl_snapshot_clone!(Core);

cmp_common::impl_persist!(CoreStats {
    instructions,
    mem_ops,
    mem_stall_cycles,
    barrier_stall_cycles,
    finished_at,
});

impl cmp_common::persist::Persist for State {
    fn save(&self, w: &mut cmp_common::persist::ByteWriter) {
        match *self {
            State::Ready { at } => {
                w.u8(0);
                w.u64(at);
            }
            State::WaitingMem { since, line } => {
                w.u8(1);
                w.u64(since);
                w.u64(line);
            }
            State::AtBarrier { since, id } => {
                w.u8(2);
                w.u64(since);
                w.u32(id);
            }
            State::Done => w.u8(3),
        }
    }
    fn load(
        r: &mut cmp_common::persist::ByteReader,
    ) -> Result<Self, cmp_common::persist::PersistError> {
        Ok(match r.u8()? {
            0 => State::Ready { at: r.u64()? },
            1 => State::WaitingMem {
                since: r.u64()?,
                line: r.u64()?,
            },
            2 => State::AtBarrier {
                since: r.u64()?,
                id: r.u32()?,
            },
            3 => State::Done,
            _ => return Err(r.err("invalid core State tag")),
        })
    }
}

/// The op source and issue width come from the configuration; the
/// source's *position* plus the execution state travel as bytes.
impl cmp_common::persist::PersistState for Core {
    fn save_state(&self, w: &mut cmp_common::persist::ByteWriter) {
        use cmp_common::persist::Persist;
        self.source.save_state(w);
        self.state.save(w);
        self.pending.save(w);
        self.stats.save(w);
    }
    fn load_state(
        &mut self,
        r: &mut cmp_common::persist::ByteReader,
    ) -> Result<(), cmp_common::persist::PersistError> {
        use cmp_common::persist::Persist;
        self.source.load_state(r)?;
        self.state = State::load(r)?;
        self.pending = Persist::load(r)?;
        self.stats = CoreStats::load(r)?;
        Ok(())
    }
}

impl Core {
    /// A core with the given trace and issue width (2 in Table 4).
    pub fn new(source: Box<dyn OpSource>, issue_width: u32) -> Self {
        assert!(issue_width >= 1);
        Core {
            source,
            issue_width,
            state: State::Ready { at: 0 },
            pending: None,
            stats: CoreStats::default(),
        }
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the trace is exhausted.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// The earliest cycle this core can make progress on its own (`None`
    /// while blocked on an external event or when done).
    pub fn ready_at(&self) -> Option<Cycle> {
        match self.state {
            State::Ready { at } => Some(at),
            _ => None,
        }
    }

    /// Human-readable label of the core's current state, for
    /// deadlock/violation dumps.
    pub fn describe(&self) -> String {
        match self.state {
            State::Ready { at } => format!("ready at cycle {at}"),
            State::WaitingMem { since, line } => {
                format!("waiting on memory for line {line:#x} since cycle {since}")
            }
            State::AtBarrier { since, id } => {
                format!("parked at barrier {id} since cycle {since}")
            }
            State::Done => "done".to_string(),
        }
    }

    /// Ask the core what it needs at cycle `now`.
    pub fn next_action(&mut self, now: Cycle) -> Action {
        match self.state {
            State::Done => Action::Done,
            State::WaitingMem { .. } | State::AtBarrier { .. } => {
                Action::Idle { until: Cycle::MAX }
            }
            State::Ready { at } if at > now => Action::Idle { until: at },
            State::Ready { .. } => {
                if let Some(op) = self.pending {
                    // re-offer a previously blocked access
                    let (line, write) = match op {
                        TraceOp::Load(a) => (a, false),
                        TraceOp::Store(a) => (a, true),
                        _ => unreachable!("only memory ops pend"),
                    };
                    return Action::Access { line, write };
                }
                match self.source.next_op() {
                    None => {
                        self.state = State::Done;
                        self.stats.finished_at = now;
                        Action::Done
                    }
                    Some(TraceOp::Compute(n)) => {
                        self.stats.instructions += n as u64;
                        let cycles = (n.div_ceil(self.issue_width)).max(1) as Cycle;
                        self.state = State::Ready { at: now + cycles };
                        Action::Idle {
                            until: now + cycles,
                        }
                    }
                    Some(op @ (TraceOp::Load(a) | TraceOp::Store(a))) => {
                        self.pending = Some(op);
                        Action::Access {
                            line: a,
                            write: matches!(op, TraceOp::Store(_)),
                        }
                    }
                    Some(TraceOp::Barrier(id)) => {
                        self.state = State::AtBarrier { since: now, id };
                        Action::AtBarrier(id)
                    }
                }
            }
        }
    }

    fn retire_mem(&mut self) {
        self.stats.instructions += 1;
        self.stats.mem_ops += 1;
        self.pending = None;
    }

    /// The offered access hit in the L1.
    pub fn mem_hit(&mut self, now: Cycle) {
        debug_assert!(self.pending.is_some());
        self.retire_mem();
        self.state = State::Ready {
            at: now + L1_HIT_LATENCY,
        };
    }

    /// The offered access missed; an MSHR was allocated. The simulator
    /// calls [`Core::mem_complete`] when the fill/grant arrives.
    pub fn mem_miss_started(&mut self, now: Cycle) {
        let line = self
            .pending
            .and_then(|op| op.line())
            .expect("miss without a pending memory op");
        self.retire_mem();
        self.state = State::WaitingMem { since: now, line };
    }

    /// The L1 could not accept the access (MSHRs full / set conflict):
    /// retry next cycle.
    pub fn mem_retry(&mut self, now: Cycle) {
        debug_assert!(self.pending.is_some());
        self.state = State::Ready { at: now + 1 };
    }

    /// The outstanding miss completed.
    pub fn mem_complete(&mut self, now: Cycle) {
        let State::WaitingMem { since, .. } = self.state else {
            panic!("mem_complete while not waiting");
        };
        self.stats.mem_stall_cycles += now - since;
        self.state = State::Ready { at: now + 1 };
    }

    /// All cores reached the barrier: resume.
    pub fn barrier_release(&mut self, now: Cycle) {
        let State::AtBarrier { since, .. } = self.state else {
            panic!("barrier_release while not at a barrier");
        };
        self.stats.barrier_stall_cycles += now - since;
        self.state = State::Ready { at: now + 1 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SliceSource;

    fn core(ops: Vec<TraceOp>) -> Core {
        Core::new(Box::new(SliceSource::new(ops)), 2)
    }

    #[test]
    fn compute_burst_takes_half_the_instructions_in_cycles() {
        let mut c = core(vec![TraceOp::Compute(10)]);
        assert_eq!(c.next_action(0), Action::Idle { until: 5 });
        // not ready before cycle 5
        assert_eq!(c.next_action(3), Action::Idle { until: 5 });
        assert_eq!(c.next_action(5), Action::Done);
        assert_eq!(c.stats().instructions, 10);
    }

    #[test]
    fn load_hit_charges_l1_latency() {
        let mut c = core(vec![TraceOp::Load(7), TraceOp::Compute(2)]);
        assert_eq!(
            c.next_action(0),
            Action::Access {
                line: 7,
                write: false
            }
        );
        c.mem_hit(0);
        assert_eq!(c.next_action(0), Action::Idle { until: 2 });
        assert_eq!(c.next_action(2), Action::Idle { until: 3 });
        assert_eq!(c.stats().mem_ops, 1);
    }

    #[test]
    fn miss_blocks_until_completion() {
        let mut c = core(vec![TraceOp::Store(9)]);
        assert_eq!(
            c.next_action(0),
            Action::Access {
                line: 9,
                write: true
            }
        );
        c.mem_miss_started(0);
        assert_eq!(c.next_action(50), Action::Idle { until: Cycle::MAX });
        c.mem_complete(100);
        assert_eq!(c.stats().mem_stall_cycles, 100);
        assert_eq!(c.next_action(101), Action::Done);
    }

    #[test]
    fn blocked_access_is_reoffered() {
        let mut c = core(vec![TraceOp::Load(5)]);
        assert_eq!(
            c.next_action(0),
            Action::Access {
                line: 5,
                write: false
            }
        );
        c.mem_retry(0);
        assert_eq!(c.next_action(0), Action::Idle { until: 1 });
        // the same access comes back
        assert_eq!(
            c.next_action(1),
            Action::Access {
                line: 5,
                write: false
            }
        );
        c.mem_hit(1);
        assert_eq!(c.stats().mem_ops, 1, "retried op retires once");
    }

    #[test]
    fn barrier_parks_until_release() {
        let mut c = core(vec![TraceOp::Barrier(3), TraceOp::Compute(2)]);
        assert_eq!(c.next_action(10), Action::AtBarrier(3));
        assert_eq!(c.next_action(20), Action::Idle { until: Cycle::MAX });
        c.barrier_release(60);
        assert_eq!(c.stats().barrier_stall_cycles, 50);
        assert_eq!(c.next_action(61), Action::Idle { until: 62 });
    }

    #[test]
    fn done_when_trace_ends() {
        let mut c = core(vec![]);
        assert_eq!(c.next_action(0), Action::Done);
        assert!(c.is_done());
        assert_eq!(c.ready_at(), None);
        assert_eq!(c.describe(), "done");
    }

    #[test]
    fn describe_names_the_blocking_line_and_barrier() {
        let mut c = core(vec![TraceOp::Load(0x40), TraceOp::Barrier(7)]);
        assert!(c.describe().starts_with("ready at cycle"));
        c.next_action(0);
        c.mem_miss_started(3);
        assert_eq!(
            c.describe(),
            "waiting on memory for line 0x40 since cycle 3"
        );
        c.mem_complete(10);
        c.next_action(11);
        assert_eq!(c.describe(), "parked at barrier 7 since cycle 11");
    }
}
