//! Trace-driven in-order core model (Table 4: 4 GHz, in-order, 2-way).
//!
//! A core consumes a stream of [`trace::TraceOp`]s: compute bursts retire
//! at the issue width, memory operations probe the L1 and block the core
//! on a miss (in-order cores with blocking loads), and barriers park the
//! core until every participant arrives. The core never owns the caches —
//! the full-system simulator mediates, which keeps this crate independent
//! of the coherence machinery:
//!
//! ```text
//! loop {
//!     match core.next_action(now) {
//!         Action::Access { line, write } => { /* probe L1, then call
//!             core.mem_hit / core.mem_miss_started / core.mem_retry */ }
//!         Action::AtBarrier(id) => { /* track arrivals, then
//!             core.barrier_release(now) on the last one */ }
//!         Action::Idle { until } => now = until,
//!         Action::Done => break,
//!     }
//! }
//! ```

pub mod core;
pub mod sync;
pub mod trace;

pub use crate::core::{Action, Core, CoreStats};
pub use sync::BarrierState;
pub use trace::{OpSource, SliceSource, TraceOp};
