//! Thin newtypes for the physical quantities that cross crate boundaries.
//!
//! The wire and energy models do their internal math in raw SI `f64`s; these
//! wrappers exist so public APIs are unambiguous about what a number means
//! (`Joules`, not "some float"). They deliberately implement only the
//! arithmetic that makes dimensional sense for how they are used.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The raw numeric value in the canonical unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            /// Ratio of two like quantities (dimensionless).
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{:.4} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// A time duration in picoseconds.
    PicoSeconds,
    "ps"
);
quantity!(
    /// A length in millimetres (tile edges, link lengths).
    Millimeters,
    "mm"
);
quantity!(
    /// An area in square millimetres (structure and wire area).
    SquareMm,
    "mm^2"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

impl PicoSeconds {
    /// Convert to seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0 * 1e-12
    }

    /// How many whole clock cycles this duration spans at `freq_hz`,
    /// rounded up (a signal that arrives mid-cycle is usable the next
    /// edge). A zero duration takes zero cycles.
    pub fn to_cycles_ceil(self, freq_hz: f64) -> u64 {
        let cycles = self.seconds() * freq_hz;
        cycles.ceil().max(0.0) as u64
    }
}

impl Millimeters {
    /// Convert to metres.
    #[inline]
    pub fn meters(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Watts {
    /// Energy dissipated over a duration.
    #[inline]
    pub fn over(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }

    /// Express as milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Joules {
    /// Express as nanojoules.
    #[inline]
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// Express as picojoules.
    #[inline]
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }
}

impl crate::persist::Persist for Joules {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        w.f64(self.0);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        Ok(Joules(r.f64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ratio() {
        let a = Joules(2.0);
        let b = Joules(0.5);
        assert_eq!((a + b).value(), 2.5);
        assert_eq!((a - b).value(), 1.5);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn cycles_round_up() {
        // 4 GHz -> 250 ps per cycle
        assert_eq!(PicoSeconds(0.0).to_cycles_ceil(4e9), 0);
        assert_eq!(PicoSeconds(1.0).to_cycles_ceil(4e9), 1);
        assert_eq!(PicoSeconds(250.0).to_cycles_ceil(4e9), 1);
        assert_eq!(PicoSeconds(251.0).to_cycles_ceil(4e9), 2);
        assert_eq!(PicoSeconds(400.0).to_cycles_ceil(4e9), 2);
        assert_eq!(PicoSeconds(500.0).to_cycles_ceil(4e9), 2);
        assert_eq!(PicoSeconds(501.0).to_cycles_ceil(4e9), 3);
    }

    #[test]
    fn power_energy_relation() {
        let p = Watts(2.0);
        let e = p.over(0.5);
        assert_eq!(e.value(), 1.0);
        assert_eq!(e.nanojoules(), 1e9);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = [Joules(1.0), Joules(2.0), Joules(3.0)].into_iter().sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn display_formats_unit() {
        assert_eq!(format!("{:.1}", Watts(1.25)), "1.2 W");
        assert_eq!(format!("{:?}", Millimeters(5.0)), "5 mm");
    }
}
