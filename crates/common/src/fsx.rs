//! Fallible filesystem seam with deterministic fault injection.
//!
//! Every durable write in the system — journal appends, atomic CSV
//! finalisation, campaign directories, checkpoint spills — routes
//! through an [`Fs`] handle. In production the handle is a thin veneer
//! over `std::fs`. Under test (or a fault campaign) it wraps the same
//! operations in a seeded fault injector that models the failure
//! classes a real disk serves up:
//!
//! * **Torn write** — a `write` persists only a prefix of the buffer
//!   and then fails, the on-disk residue of a crash mid-write.
//! * **ENOSPC** — a `write` fails with [`io::ErrorKind::StorageFull`]
//!   before persisting anything.
//! * **Short read** — a read *silently* returns a truncated prefix;
//!   callers must detect this through their own framing (length
//!   headers, checksums, torn-line tolerance), which is exactly what
//!   the fault campaign verifies.
//! * **Bit flip on read** — one bit of the returned buffer flips,
//!   silently; ditto.
//! * **Rename-then-crash** — the rename *succeeds* on disk but the
//!   call reports failure, modelling a crash between the rename and
//!   whatever bookkeeping was to follow it.
//!
//! Decisions are made by a seeded [`SimRng`], one roll per class per
//! operation in a fixed order, so a single-threaded fault campaign is
//! exactly reproducible from its configuration. (Under a concurrent
//! workload the interleaving of operations — and therefore which one
//! faults — follows the thread schedule; the guarantees under test are
//! "no panic, no silent corruption", which are schedule-independent.)
//!
//! The `TCMP_FS_FAULTS` environment variable arms the fault backend
//! process-wide (see [`Fs::from_env`]); parsing is loud — a malformed
//! spec is a hard error, never a silently ignored knob.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::rng::SimRng;

/// Per-class fault probabilities for the filesystem seam. All-zero
/// rates mean "no injection" (but operations are still counted).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FsFaultConfig {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Probability a write is torn (prefix persisted, error returned).
    pub torn_write: f64,
    /// Probability a write fails with `StorageFull` upfront.
    pub enospc: f64,
    /// Probability a read silently returns a truncated prefix.
    pub short_read: f64,
    /// Probability one bit of a read flips silently.
    pub bit_flip: f64,
    /// Probability a rename succeeds on disk but reports failure.
    pub rename_crash: f64,
    /// Stop injecting after this many faults (`None` = unlimited).
    pub max_faults: Option<u64>,
}

impl FsFaultConfig {
    /// True when any class has a non-zero rate.
    pub fn enabled(&self) -> bool {
        self.torn_write > 0.0
            || self.enospc > 0.0
            || self.short_read > 0.0
            || self.bit_flip > 0.0
            || self.rename_crash > 0.0
    }

    /// Parse a `TCMP_FS_FAULTS` spec: comma-separated `key=value`
    /// pairs with keys `seed`, `torn`, `enospc`, `short`, `flip`,
    /// `rename`, `max`. Example: `seed=7,torn=0.05,enospc=0.02`.
    pub fn parse(spec: &str) -> Result<FsFaultConfig, String> {
        let mut cfg = FsFaultConfig::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fs-fault spec entry {pair:?} is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let rate = |what: &str| -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("fs-fault {what} rate {value:?} is not a number"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("fs-fault {what} rate {v} is outside [0, 1]"));
                }
                Ok(v)
            };
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("fs-fault seed {value:?} is not a u64"))?
                }
                "torn" => cfg.torn_write = rate("torn")?,
                "enospc" => cfg.enospc = rate("enospc")?,
                "short" => cfg.short_read = rate("short")?,
                "flip" => cfg.bit_flip = rate("flip")?,
                "rename" => cfg.rename_crash = rate("rename")?,
                "max" => {
                    cfg.max_faults = Some(
                        value
                            .parse()
                            .map_err(|_| format!("fs-fault max {value:?} is not a u64"))?,
                    )
                }
                other => {
                    return Err(format!(
                        "unknown fs-fault key {other:?} (expected seed/torn/enospc/short/flip/rename/max)"
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// Lifetime operation and injection counters of one [`Fs`] handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStats {
    /// `write` calls observed.
    pub writes: u64,
    /// `sync` calls observed.
    pub syncs: u64,
    /// Reads observed.
    pub reads: u64,
    /// Renames observed.
    pub renames: u64,
    /// Torn writes injected.
    pub injected_torn: u64,
    /// ENOSPC failures injected.
    pub injected_enospc: u64,
    /// Short reads injected.
    pub injected_short_read: u64,
    /// Bit flips injected.
    pub injected_bit_flip: u64,
    /// Rename-then-crash failures injected.
    pub injected_rename_crash: u64,
}

impl FsStats {
    /// Total faults injected across every class.
    pub fn injected_total(&self) -> u64 {
        self.injected_torn
            + self.injected_enospc
            + self.injected_short_read
            + self.injected_bit_flip
            + self.injected_rename_crash
    }
}

struct FaultState {
    cfg: FsFaultConfig,
    rng: SimRng,
    stats: FsStats,
}

impl FaultState {
    fn budget_left(&self) -> bool {
        match self.cfg.max_faults {
            Some(max) => self.stats.injected_total() < max,
            None => true,
        }
    }
}

/// What a fault roll decided for one write operation.
enum WriteFate {
    Clean,
    Torn { keep: usize },
    Enospc,
}

enum Backend {
    Real(Mutex<FsStats>),
    Faulty(Mutex<FaultState>),
}

/// A cloneable filesystem handle. Clones share the same backend (and
/// therefore the same fault decision stream and counters).
#[derive(Clone)]
pub struct Fs {
    backend: Arc<Backend>,
}

impl std::fmt::Debug for Fs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.backend {
            Backend::Real(_) => write!(f, "Fs::real"),
            Backend::Faulty(_) => write!(f, "Fs::faulty"),
        }
    }
}

impl Default for Fs {
    fn default() -> Self {
        Fs::real()
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::new(
        if kind == "enospc" {
            io::ErrorKind::StorageFull
        } else {
            io::ErrorKind::Other
        },
        format!("injected fs fault: {kind}"),
    )
}

impl Fs {
    /// The production backend: `std::fs`, no injection, counters only.
    pub fn real() -> Fs {
        Fs {
            backend: Arc::new(Backend::Real(Mutex::new(FsStats::default()))),
        }
    }

    /// A fault-injecting backend with the given configuration.
    pub fn faulty(cfg: FsFaultConfig) -> Fs {
        let rng = SimRng::new(cfg.seed ^ 0xF5F5_0F0F_5A5A_A5A5);
        Fs {
            backend: Arc::new(Backend::Faulty(Mutex::new(FaultState {
                cfg,
                rng,
                stats: FsStats::default(),
            }))),
        }
    }

    /// The backend `TCMP_FS_FAULTS` asks for: unset or empty means the
    /// real backend; a malformed spec is a hard error (a fault campaign
    /// that silently ran without faults would report false confidence).
    pub fn from_env() -> Result<Fs, String> {
        match std::env::var("TCMP_FS_FAULTS") {
            Err(_) => Ok(Fs::real()),
            Ok(spec) if spec.trim().is_empty() => Ok(Fs::real()),
            Ok(spec) => {
                let cfg = FsFaultConfig::parse(&spec)
                    .map_err(|e| format!("TCMP_FS_FAULTS: {e} (spec was {spec:?})"))?;
                Ok(Fs::faulty(cfg))
            }
        }
    }

    /// Whether this handle injects faults.
    pub fn is_faulty(&self) -> bool {
        matches!(&*self.backend, Backend::Faulty(_))
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FsStats {
        match &*self.backend {
            Backend::Real(stats) => *stats.lock().unwrap_or_else(|p| p.into_inner()),
            Backend::Faulty(state) => state.lock().unwrap_or_else(|p| p.into_inner()).stats,
        }
    }

    fn real_count(&self, f: impl FnOnce(&mut FsStats)) {
        if let Backend::Real(stats) = &*self.backend {
            f(&mut stats.lock().unwrap_or_else(|p| p.into_inner()));
        }
    }

    /// Roll the write-fault dice for a `len`-byte write. Fixed roll
    /// order (ENOSPC, then torn) keeps the decision stream stable.
    fn roll_write(&self, len: usize) -> WriteFate {
        let Backend::Faulty(state) = &*self.backend else {
            self.real_count(|s| s.writes += 1);
            return WriteFate::Clean;
        };
        let mut st = state.lock().unwrap_or_else(|p| p.into_inner());
        st.stats.writes += 1;
        if !st.budget_left() {
            return WriteFate::Clean;
        }
        let p_enospc = st.cfg.enospc;
        if st.rng.chance(p_enospc) {
            st.stats.injected_enospc += 1;
            return WriteFate::Enospc;
        }
        let p_torn = st.cfg.torn_write;
        if st.rng.chance(p_torn) {
            st.stats.injected_torn += 1;
            let keep = if len == 0 {
                0
            } else {
                st.rng.below(len as u64) as usize
            };
            return WriteFate::Torn { keep };
        }
        WriteFate::Clean
    }

    fn roll_read(&self, buf: &mut Vec<u8>) {
        let Backend::Faulty(state) = &*self.backend else {
            self.real_count(|s| s.reads += 1);
            return;
        };
        let mut st = state.lock().unwrap_or_else(|p| p.into_inner());
        st.stats.reads += 1;
        if !st.budget_left() {
            return;
        }
        let p_short = st.cfg.short_read;
        if st.rng.chance(p_short) && !buf.is_empty() {
            st.stats.injected_short_read += 1;
            let keep = st.rng.below(buf.len() as u64) as usize;
            buf.truncate(keep);
            return;
        }
        let p_flip = st.cfg.bit_flip;
        if st.rng.chance(p_flip) && !buf.is_empty() {
            st.stats.injected_bit_flip += 1;
            let byte = st.rng.below(buf.len() as u64) as usize;
            let bit = st.rng.below(8) as u8;
            buf[byte] ^= 1 << bit;
        }
    }

    fn roll_rename(&self) -> bool {
        let Backend::Faulty(state) = &*self.backend else {
            self.real_count(|s| s.renames += 1);
            return false;
        };
        let mut st = state.lock().unwrap_or_else(|p| p.into_inner());
        st.stats.renames += 1;
        if !st.budget_left() {
            return false;
        }
        let p = st.cfg.rename_crash;
        if st.rng.chance(p) {
            st.stats.injected_rename_crash += 1;
            return true;
        }
        false
    }

    fn count_sync(&self) {
        match &*self.backend {
            Backend::Real(stats) => stats.lock().unwrap_or_else(|p| p.into_inner()).syncs += 1,
            Backend::Faulty(state) => {
                state.lock().unwrap_or_else(|p| p.into_inner()).stats.syncs += 1
            }
        }
    }

    // -- operations ---------------------------------------------------

    /// Create (truncating) a file for writing.
    pub fn create(&self, path: impl AsRef<Path>) -> io::Result<FsFile> {
        Ok(FsFile {
            fs: self.clone(),
            file: std::fs::File::create(path.as_ref())?,
            path: path.as_ref().to_path_buf(),
        })
    }

    /// Create a file that must not yet exist, opened for appending.
    pub fn create_new_append(&self, path: impl AsRef<Path>) -> io::Result<FsFile> {
        Ok(FsFile {
            fs: self.clone(),
            file: std::fs::OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(path.as_ref())?,
            path: path.as_ref().to_path_buf(),
        })
    }

    /// Open an existing file for appending.
    pub fn open_append(&self, path: impl AsRef<Path>) -> io::Result<FsFile> {
        Ok(FsFile {
            fs: self.clone(),
            file: std::fs::OpenOptions::new()
                .append(true)
                .open(path.as_ref())?,
            path: path.as_ref().to_path_buf(),
        })
    }

    /// Read a whole file, subject to short-read / bit-flip injection.
    pub fn read(&self, path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        std::fs::File::open(path.as_ref())?.read_to_end(&mut buf)?;
        self.roll_read(&mut buf);
        Ok(buf)
    }

    /// Read a whole file as UTF-8 (lossy on an injected bit flip that
    /// lands in a multi-byte sequence — the caller's parser must cope).
    pub fn read_to_string(&self, path: impl AsRef<Path>) -> io::Result<String> {
        let buf = self.read(path)?;
        Ok(String::from_utf8_lossy(&buf).into_owned())
    }

    /// Rename, subject to rename-then-crash injection (the rename
    /// *happens*, the error reports a crash before the caller's next
    /// step).
    pub fn rename(&self, from: impl AsRef<Path>, to: impl AsRef<Path>) -> io::Result<()> {
        let crash_after = self.roll_rename();
        std::fs::rename(from.as_ref(), to.as_ref())?;
        if crash_after {
            return Err(injected("rename-then-crash"));
        }
        Ok(())
    }

    /// Remove a file (never fault-injected: removal is how quarantine
    /// and eviction clean up, and must stay reliable).
    pub fn remove_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::remove_file(path.as_ref())
    }

    /// Create a directory tree (not fault-injected; directory creation
    /// failures surface as ordinary `io::Error`s from the real fs).
    pub fn create_dir_all(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::create_dir_all(path.as_ref())
    }

    /// Crash-safe whole-file write through this handle: contents go to
    /// `<path>.tmp`, are fsynced, and replace `path` with one rename.
    /// Any injected fault surfaces as an error after which `path` still
    /// holds either its old complete contents or the new complete
    /// contents — never a torn mix (the torn residue stays in the tmp
    /// file).
    pub fn write_atomic(
        &self,
        path: impl AsRef<Path>,
        contents: impl AsRef<[u8]>,
    ) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = match path.file_name() {
            Some(name) => {
                let mut n = name.to_os_string();
                n.push(".tmp");
                path.with_file_name(n)
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("not a file path: {}", path.display()),
                ))
            }
        };
        let mut f = self.create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.sync()?;
        drop(f);
        self.rename(&tmp, path)
    }
}

/// A writable file whose writes and syncs route through the owning
/// [`Fs`]'s fault seam.
pub struct FsFile {
    fs: Fs,
    file: std::fs::File,
    path: PathBuf,
}

impl std::fmt::Debug for FsFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FsFile({})", self.path.display())
    }
}

impl FsFile {
    /// The path this file was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write the whole buffer, or fail. A torn-write fault persists a
    /// prefix and then errors; an ENOSPC fault errors with
    /// [`io::ErrorKind::StorageFull`] before persisting anything.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.fs.roll_write(buf.len()) {
            WriteFate::Clean => self.file.write_all(buf),
            WriteFate::Enospc => Err(injected("enospc")),
            WriteFate::Torn { keep } => {
                self.file.write_all(&buf[..keep])?;
                Err(injected("torn write"))
            }
        }
    }

    /// Flush file data (and metadata) to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.fs.count_sync();
        self.file.sync_all()
    }

    /// Flush file data only (`fdatasync` semantics).
    pub fn sync_data(&mut self) -> io::Result<()> {
        self.fs.count_sync();
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcmp_fsx_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_backend_round_trips_and_counts() {
        let dir = tmpdir("real");
        let fs = Fs::real();
        let path = dir.join("a.txt");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        fs.rename(&path, dir.join("b.txt")).unwrap();
        assert_eq!(fs.read_to_string(dir.join("b.txt")).unwrap(), "hello");
        let stats = fs.stats();
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.syncs, 1);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.renames, 1);
        assert_eq!(stats.injected_total(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_a_prefix_and_errors() {
        let dir = tmpdir("torn");
        let fs = Fs::faulty(FsFaultConfig {
            seed: 11,
            torn_write: 1.0,
            ..FsFaultConfig::default()
        });
        let path = dir.join("t.bin");
        let mut f = fs.create(&path).unwrap();
        let err = f.write_all(&[0xAB; 64]).unwrap_err();
        assert!(err.to_string().contains("torn"));
        drop(f);
        let residue = std::fs::read(&path).unwrap();
        assert!(residue.len() < 64, "a strict prefix remains");
        assert!(residue.iter().all(|&b| b == 0xAB));
        assert_eq!(fs.stats().injected_torn, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_persists_nothing() {
        let dir = tmpdir("enospc");
        let fs = Fs::faulty(FsFaultConfig {
            seed: 5,
            enospc: 1.0,
            ..FsFaultConfig::default()
        });
        let path = dir.join("e.bin");
        let mut f = fs.create(&path).unwrap();
        let err = f.write_all(&[1; 32]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(f);
        assert!(std::fs::read(&path).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_and_bit_flip_are_silent() {
        let dir = tmpdir("read");
        let path = dir.join("r.bin");
        std::fs::write(&path, [0u8; 128]).unwrap();
        let fs = Fs::faulty(FsFaultConfig {
            seed: 3,
            short_read: 1.0,
            ..FsFaultConfig::default()
        });
        let buf = fs.read(&path).unwrap();
        assert!(buf.len() < 128, "short read returned a prefix silently");
        let fs = Fs::faulty(FsFaultConfig {
            seed: 3,
            bit_flip: 1.0,
            ..FsFaultConfig::default()
        });
        let buf = fs.read(&path).unwrap();
        assert_eq!(buf.len(), 128);
        assert_eq!(
            buf.iter().map(|b| b.count_ones()).sum::<u32>(),
            1,
            "exactly one bit flipped"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rename_crash_renames_but_reports_failure() {
        let dir = tmpdir("rename");
        let a = dir.join("a");
        let b = dir.join("b");
        std::fs::write(&a, b"x").unwrap();
        let fs = Fs::faulty(FsFaultConfig {
            seed: 9,
            rename_crash: 1.0,
            ..FsFaultConfig::default()
        });
        assert!(fs.rename(&a, &b).is_err());
        assert!(!a.exists() && b.exists(), "the rename itself happened");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_never_leaves_a_torn_target() {
        let dir = tmpdir("atomic");
        let path = dir.join("out.csv");
        Fs::real().write_atomic(&path, "old complete\n").unwrap();
        // Hammer the atomic write with every fault class armed; after
        // every failure the target must hold one of the two complete
        // contents.
        let fs = Fs::faulty(FsFaultConfig {
            seed: 1234,
            torn_write: 0.4,
            enospc: 0.2,
            rename_crash: 0.2,
            ..FsFaultConfig::default()
        });
        let mut succeeded = 0;
        for i in 0..50 {
            let new = format!("new contents {i}\n");
            let before = std::fs::read_to_string(&path).unwrap();
            match fs.write_atomic(&path, &new) {
                Ok(()) => {
                    succeeded += 1;
                    assert_eq!(std::fs::read_to_string(&path).unwrap(), new);
                }
                Err(_) => {
                    let after = std::fs::read_to_string(&path).unwrap();
                    assert!(
                        after == before || after == new,
                        "target must be one complete version, got {after:?}"
                    );
                }
            }
        }
        assert!(succeeded > 0, "some writes should get through");
        assert!(fs.stats().injected_total() > 0, "some faults should fire");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_seed_same_single_threaded_decision_stream() {
        let run = || {
            let fs = Fs::faulty(FsFaultConfig {
                seed: 77,
                torn_write: 0.3,
                enospc: 0.1,
                ..FsFaultConfig::default()
            });
            let dir = tmpdir("det");
            let mut fates = Vec::new();
            for i in 0..40 {
                let mut f = fs.create(dir.join(format!("f{i}"))).unwrap();
                fates.push(f.write_all(&[0; 16]).map_err(|e| e.to_string()));
            }
            std::fs::remove_dir_all(&dir).unwrap();
            (fates, fs.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_faults_bounds_injection() {
        let fs = Fs::faulty(FsFaultConfig {
            seed: 1,
            enospc: 1.0,
            max_faults: Some(2),
            ..FsFaultConfig::default()
        });
        let dir = tmpdir("budget");
        let mut errs = 0;
        for i in 0..5 {
            let mut f = fs.create(dir.join(format!("f{i}"))).unwrap();
            if f.write_all(&[0; 8]).is_err() {
                errs += 1;
            }
        }
        assert_eq!(errs, 2, "injection stops at the budget");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn env_spec_parses_loudly() {
        let cfg = FsFaultConfig::parse(
            "seed=7, torn=0.5,enospc=0.25,short=0.1,flip=0.1,rename=0.05,max=10",
        )
        .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.torn_write, 0.5);
        assert_eq!(cfg.enospc, 0.25);
        assert_eq!(cfg.short_read, 0.1);
        assert_eq!(cfg.bit_flip, 0.1);
        assert_eq!(cfg.rename_crash, 0.05);
        assert_eq!(cfg.max_faults, Some(10));
        assert!(cfg.enabled());
        assert!(FsFaultConfig::parse("bogus=1").is_err());
        assert!(FsFaultConfig::parse("torn=2.0").is_err());
        assert!(FsFaultConfig::parse("torn").is_err());
        assert!(!FsFaultConfig::parse("").unwrap().enabled());
    }
}
