//! Panic-free binary state codec for on-disk checkpoints.
//!
//! The in-memory checkpoint cache clones [`crate::snapshot::Snapshot`]
//! states; spilling a checkpoint to disk needs real bytes. This module
//! is the byte layer: a little-endian, length-prefixed encoding with a
//! bounds-checked reader whose every decode path returns a structured
//! [`PersistError`] — corrupt or truncated input must *never* panic,
//! because the disk store's quarantine path runs on exactly that input.
//!
//! Two traits split the world:
//!
//! * [`Persist`] — value semantics (`save` + constructing `load`) for
//!   plain data: counters, events, messages, map entries.
//! * [`PersistState`] — in-place semantics (`save_state` +
//!   `load_state(&mut self)`) for composites that mix mutable state
//!   with immutable configuration or trait objects. A checkpoint is
//!   only ever loaded into a machine freshly built from the *same*
//!   configuration (the warm key fingerprints all of it), so the
//!   immutable parts are reconstructed by the constructor and only the
//!   mutable state travels through the bytes. This is what lets
//!   `Box<dyn OpSource>`-style trait objects participate without any
//!   tagged-constructor registry: the fresh machine already holds an
//!   object of the right concrete type, and `load_state` overwrites
//!   its state in place.
//!
//! Every [`Persist`] type automatically implements [`PersistState`]
//! (blanket impl), so a type implements exactly one of the two.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;

/// Structured decode failure: where in the byte stream, and what the
/// decoder was trying to read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistError {
    /// Byte offset at which the decode failed.
    pub at: usize,
    /// What was being decoded (static context string).
    pub what: &'static str,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt state: {} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for PersistError {}

/// Growable little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh, empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bits (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append raw bytes with a length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a UTF-8 string with a length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked reader over a byte slice. Every accessor returns a
/// [`PersistError`] instead of panicking on truncated input.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A [`PersistError`] at the current position.
    pub fn err(&self, what: &'static str) -> PersistError {
        PersistError { at: self.pos, what }
    }

    /// Fail unless every byte was consumed (trailing garbage means the
    /// payload is not what its header claims).
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err("trailing bytes after decoded state"))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(self.err(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "truncated u8")?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        let b = self.take(2, "truncated u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4, "truncated u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8, "truncated u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool (one byte; anything but 0/1 is corruption).
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.err("invalid bool byte")),
        }
    }

    /// Read a `usize` (stored as `u64`, checked against the platform).
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| self.err("usize overflows platform"))
    }

    /// Read a length prefix destined to allocate a collection whose
    /// elements occupy at least one byte each. The bound means corrupt
    /// input can never demand an allocation larger than the input
    /// itself.
    pub fn len_prefix(&mut self) -> Result<usize, PersistError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(self.err("length prefix exceeds remaining input"));
        }
        Ok(n)
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.len_prefix()?;
        self.take(n, "truncated byte string")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, PersistError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| self.err("invalid utf-8 string"))
    }
}

// ---------------------------------------------------------------------------
// The traits
// ---------------------------------------------------------------------------

/// Value-semantics byte codec: save to a writer, load by construction.
/// Implemented by plain-data types (everything a collection holds).
pub trait Persist: Sized {
    /// Append this value's encoding.
    fn save(&self, w: &mut ByteWriter);
    /// Decode one value; must not panic on corrupt or truncated input.
    fn load(r: &mut ByteReader) -> Result<Self, PersistError>;
}

/// In-place state codec for composites holding immutable configuration
/// or trait objects: `load_state` overwrites the mutable state of an
/// object the caller already constructed from the matching config.
pub trait PersistState {
    /// Append this object's mutable state.
    fn save_state(&self, w: &mut ByteWriter);
    /// Overwrite this object's mutable state from the reader.
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError>;
}

/// Every value codec is trivially an in-place codec.
impl<T: Persist> PersistState for T {
    fn save_state(&self, w: &mut ByteWriter) {
        self.save(w);
    }
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), PersistError> {
        *self = T::load(r)?;
        Ok(())
    }
}

/// Save each element of a fixed-shape slice (tiles, banks, routers).
pub fn save_state_slice<T: PersistState>(items: &[T], w: &mut ByteWriter) {
    w.usize(items.len());
    for it in items {
        it.save_state(w);
    }
}

/// Load into each element of a fixed-shape slice; the stored length
/// must match the live one (it is determined by the configuration).
pub fn load_state_slice<T: PersistState>(
    items: &mut [T],
    r: &mut ByteReader,
) -> Result<(), PersistError> {
    let n = r.usize()?;
    if n != items.len() {
        return Err(r.err("slice length does not match machine shape"));
    }
    for it in items {
        it.load_state(r)?;
    }
    Ok(())
}

/// Save a hash map sorted by key, so equal maps encode identically.
pub fn save_map<K: Persist + Ord, V: Persist>(map: &HashMap<K, V>, w: &mut ByteWriter) {
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.usize(entries.len());
    for (k, v) in entries {
        k.save(w);
        v.save(w);
    }
}

/// Load a hash map saved by [`save_map`].
pub fn load_map<K: Persist + Eq + Hash, V: Persist>(
    r: &mut ByteReader,
) -> Result<HashMap<K, V>, PersistError> {
    let n = r.len_prefix()?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let k = K::load(r)?;
        let v = V::load(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

// ---------------------------------------------------------------------------
// Primitive and std impls
// ---------------------------------------------------------------------------

macro_rules! persist_prim {
    ($t:ty, $save:ident, $load:ident) => {
        impl Persist for $t {
            fn save(&self, w: &mut ByteWriter) {
                w.$save(*self);
            }
            fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
                r.$load()
            }
        }
    };
}

persist_prim!(u8, u8, u8);
persist_prim!(u16, u16, u16);
persist_prim!(u32, u32, u32);
persist_prim!(u64, u64, u64);
persist_prim!(i64, i64, i64);
persist_prim!(f64, f64, f64);
persist_prim!(bool, bool, bool);
persist_prim!(usize, usize, usize);

impl Persist for String {
    fn save(&self, w: &mut ByteWriter) {
        w.str(self);
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        r.string()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.save(w);
            }
        }
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        Ok(if r.bool()? { Some(T::load(r)?) } else { None })
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        let n = r.len_prefix()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        let n = r.len_prefix()?;
        let mut v = VecDeque::with_capacity(n);
        for _ in 0..n {
            v.push_back(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn save(&self, w: &mut ByteWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::load(r)?);
        }
        match v.try_into() {
            Ok(arr) => Ok(arr),
            Err(_) => Err(r.err("array length mismatch")),
        }
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn save(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        let n = r.len_prefix()?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

/// Implement [`Persist`] for a struct by listing every field. All
/// fields must themselves be [`Persist`]; the macro must be invoked in
/// the defining crate (it constructs the struct literally).
#[macro_export]
macro_rules! impl_persist {
    ($t:ty { $($f:ident),* $(,)? }) => {
        impl $crate::persist::Persist for $t {
            fn save(&self, w: &mut $crate::persist::ByteWriter) {
                $( $crate::persist::Persist::save(&self.$f, w); )*
            }
            fn load(
                r: &mut $crate::persist::ByteReader,
            ) -> Result<Self, $crate::persist::PersistError> {
                Ok(Self { $( $f: $crate::persist::Persist::load(r)?, )* })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        0xAAu8.save(&mut w);
        0xBBCCu16.save(&mut w);
        u32::MAX.save(&mut w);
        u64::MAX.save(&mut w);
        (-42i64).save(&mut w);
        (0.1f64 + 0.2).save(&mut w);
        true.save(&mut w);
        "héllo".to_string().save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(u8::load(&mut r).unwrap(), 0xAA);
        assert_eq!(u16::load(&mut r).unwrap(), 0xBBCC);
        assert_eq!(u32::load(&mut r).unwrap(), u32::MAX);
        assert_eq!(u64::load(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::load(&mut r).unwrap(), -42);
        assert_eq!(f64::load(&mut r).unwrap(), 0.1 + 0.2);
        assert!(bool::load(&mut r).unwrap());
        assert_eq!(String::load(&mut r).unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn collections_round_trip() {
        let mut w = ByteWriter::new();
        vec![1u64, 2, 3].save(&mut w);
        VecDeque::from(vec![4u32, 5]).save(&mut w);
        Some(7u8).save(&mut w);
        Option::<u8>::None.save(&mut w);
        [9u64, 10, 11, 12].save(&mut w);
        (1u8, 2u16, 3u32).save(&mut w);
        let mut m = HashMap::new();
        m.insert(3u64, "c".to_string());
        m.insert(1u64, "a".to_string());
        save_map(&m, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(Vec::<u64>::load(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(
            VecDeque::<u32>::load(&mut r).unwrap(),
            VecDeque::from(vec![4, 5])
        );
        assert_eq!(Option::<u8>::load(&mut r).unwrap(), Some(7));
        assert_eq!(Option::<u8>::load(&mut r).unwrap(), None);
        assert_eq!(<[u64; 4]>::load(&mut r).unwrap(), [9, 10, 11, 12]);
        assert_eq!(<(u8, u16, u32)>::load(&mut r).unwrap(), (1, 2, 3));
        assert_eq!(load_map::<u64, String>(&mut r).unwrap(), m);
        r.finish().unwrap();
    }

    #[test]
    fn sorted_map_encoding_is_deterministic() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in [5u64, 1, 9, 3] {
            a.insert(k, k * 2);
        }
        for k in [3u64, 9, 1, 5] {
            b.insert(k, k * 2);
        }
        let (mut wa, mut wb) = (ByteWriter::new(), ByteWriter::new());
        save_map(&a, &mut wa);
        save_map(&b, &mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        vec![1u64; 8].save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let res = Vec::<u64>::load(&mut r);
            assert!(res.is_err(), "cut at {cut} must fail, not panic");
        }
    }

    #[test]
    fn hostile_length_prefix_cannot_force_allocation() {
        // a length prefix claiming 2^60 elements over a 9-byte input
        let mut w = ByteWriter::new();
        w.u64(1 << 60);
        w.u8(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = Vec::<u64>::load(&mut r).unwrap_err();
        assert!(err.what.contains("length prefix"));
    }

    #[test]
    fn invalid_bool_and_utf8_are_structured_errors() {
        let mut r = ByteReader::new(&[7]);
        assert!(bool::load(&mut r).is_err());
        let mut w = ByteWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(String::load(&mut r).is_err());
    }

    #[test]
    fn state_slice_checks_machine_shape() {
        let items = [1u64, 2, 3];
        let mut w = ByteWriter::new();
        save_state_slice(&items, &mut w);
        let bytes = w.into_bytes();
        let mut wrong = [0u64; 2];
        let mut r = ByteReader::new(&bytes);
        assert!(load_state_slice(&mut wrong, &mut r).is_err());
        let mut right = [0u64; 3];
        let mut r = ByteReader::new(&bytes);
        load_state_slice(&mut right, &mut r).unwrap();
        assert_eq!(right, items);
        r.finish().unwrap();
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        let _ = r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
