//! Minimal seeded randomized-testing harness.
//!
//! The workspace builds offline with no external dependencies, so the
//! property suites draw their cases from [`SimRng`] instead of an external
//! property-testing crate. Each case derives its seed deterministically
//! from the test name and case index, making every run reproducible; a
//! failing case prints its seed, which can then be pinned as a fixed
//! regression case with [`run_seed`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// Default number of random cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Stable 64-bit hash of a test name (FNV-1a).
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seed of case `case` of the property `name`.
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut s = name_hash(name) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    crate::rng::splitmix64(&mut s)
}

/// Run `cases` random cases of a property. The closure receives a fresh
/// [`SimRng`] per case and asserts its invariants; on panic the failing
/// seed is printed before the panic propagates.
pub fn run_cases(name: &str, cases: u32, mut f: impl FnMut(&mut SimRng)) {
    for case in 0..cases {
        let seed = seed_for(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = SimRng::new(seed);
            f(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "randomized property '{name}' failed at case {case} \
                 (seed {seed:#018x}); pin it with run_seed({seed:#018x}, ..)"
            );
            resume_unwind(payload);
        }
    }
}

/// Re-run a single pinned case (a recorded regression seed).
pub fn run_seed(seed: u64, mut f: impl FnMut(&mut SimRng)) {
    f(&mut SimRng::new(seed));
}

/// Uniform `i64` in `[lo, hi)`.
pub fn i64_in(rng: &mut SimRng, lo: i64, hi: i64) -> i64 {
    assert!(lo < hi);
    lo.wrapping_add(rng.below(hi.abs_diff(lo)) as i64)
}

/// Uniform `u64` in `[lo, hi)`.
pub fn u64_in(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi);
    lo + rng.below(hi - lo)
}

/// Uniform `usize` in `[lo, hi)`.
pub fn usize_in(rng: &mut SimRng, lo: usize, hi: usize) -> usize {
    u64_in(rng, lo as u64, hi as u64) as usize
}

/// Uniform `f64` in `[lo, hi)`.
pub fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi);
    lo + rng.f64() * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(seed_for("p", 0), seed_for("p", 0));
        assert_ne!(seed_for("p", 0), seed_for("p", 1));
        assert_ne!(seed_for("p", 0), seed_for("q", 0));
    }

    #[test]
    fn run_cases_visits_every_case() {
        let mut n = 0;
        run_cases("counter", 10, |_| n += 1);
        assert_eq!(n, 10);
    }

    #[test]
    fn ranges_are_respected() {
        run_cases("ranges", 16, |rng| {
            let v = i64_in(rng, -5, 5);
            assert!((-5..5).contains(&v));
            let u = u64_in(rng, 10, 20);
            assert!((10..20).contains(&u));
            let f = f64_in(rng, 1.5, 2.5);
            assert!((1.5..2.5).contains(&f));
        });
    }
}
