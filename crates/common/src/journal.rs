//! Durable campaign journal: crash-resumable bookkeeping for long
//! matrix sweeps.
//!
//! A multi-hour Figure-6/7 sweep must survive an OOM kill, a Ctrl-C or
//! a wedged cell without throwing away the finished work. The journal
//! makes every campaign binary restartable:
//!
//! * an **append-only JSONL file** (`journal.jsonl`) records one line
//!   per cell event — `start`, `finish` (with the cell's result row) or
//!   `fail` — flushed and fsynced per record, so the on-disk state is
//!   never more than one line behind the process;
//! * replaying the journal classifies every cell as *completed*
//!   (a `finish` record carries its result), *failed* (terminal `fail`)
//!   or *interrupted* (a `start` with no matching outcome — the cell
//!   that was mid-flight when the process died). A resumed campaign
//!   re-runs only the failed and interrupted cells;
//! * a **meta record** stamps the campaign with a schema version, the
//!   git SHA of the producing build and a hash of the run
//!   configuration; [`Journal::resume`] refuses to mix results from a
//!   different code revision or configuration;
//! * [`write_atomic`] gives every results writer tmp-file-then-rename
//!   semantics, so a crash mid-write can never leave a torn CSV or
//!   `BENCH.json` behind.
//!
//! The journal is generic: cell keys are opaque strings and result rows
//! are opaque [`Json`] values, so this crate stays dependency-free and
//! the simulator crates decide what a row contains.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::fsx::{Fs, FsFile};

/// Name of the journal file inside a campaign directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Journal schema version; bumped on incompatible record changes.
pub const JOURNAL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A minimal JSON value.
///
/// Numbers are kept as their raw token text ([`Json::Num`]), so a `u64`
/// above 2^53 or an exact `f64` shortest representation round-trips
/// bit-identically through serialise → parse → serialise — the property
/// the crash/resume tests pin.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number as its raw token text (lossless round-trip).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (rendering is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from a `u64` (exact).
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from an `f64` using Rust's shortest round-trip
    /// representation, so parsing it back yields the identical bits.
    pub fn f64(v: f64) -> Json {
        Json::Num(format!("{v:?}"))
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The array items (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON value from `text` (the whole string must be
    /// consumed apart from trailing whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'+' | b'-' | b'.'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number token".to_string())?;
        if token.is_empty() || token.parse::<f64>().is_err() {
            return Err(format!("invalid number {token:?} at byte {start}"));
        }
        Ok(Json::Num(token.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("invalid escape {other:?}")),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Atomic result writes
// ---------------------------------------------------------------------------

/// Crash-safe file write: the contents land in `<path>.tmp`, are
/// fsynced, and replace `path` with a single rename. A reader (or a
/// resumed campaign) therefore sees either the old complete file or the
/// new complete file — never a torn write. Routes through the real
/// filesystem backend; fault campaigns use [`crate::fsx::Fs::write_atomic`]
/// directly.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    Fs::real().write_atomic(path, contents)
}

// ---------------------------------------------------------------------------
// The journal proper
// ---------------------------------------------------------------------------

/// Identity stamp of a campaign: which code produced it, under which
/// configuration. [`Journal::resume`] refuses a mismatch, so rows from
/// different builds or sweeps can never be silently mixed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignMeta {
    /// Git revision of the producing build (`"unknown"` outside a
    /// checkout).
    pub git_sha: String,
    /// Hash of the run configuration (machine + spec list).
    pub config_hash: String,
    /// Total cells in the sweep (informational).
    pub cells: usize,
}

/// FNV-1a 64-bit over a canonical description string — the
/// configuration fingerprint carried in [`CampaignMeta::config_hash`].
pub fn fingerprint(text: &str) -> String {
    format!("{:016x}", crate::hash::fnv64(text.as_bytes()))
}

/// What replaying a journal found for each cell.
#[derive(Clone, Debug, Default)]
pub struct JournalReplay {
    /// Cells with a `finish` record, keyed by cell id, with their rows.
    pub completed: BTreeMap<String, Json>,
    /// Cells whose last record is a terminal `fail`:
    /// `(attempts, error text)`. Re-run on resume.
    pub failed: BTreeMap<String, (u64, String)>,
    /// Cells with a `start` but no outcome — mid-flight when the
    /// process died. Re-run on resume.
    pub interrupted: Vec<String>,
}

impl JournalReplay {
    /// Cells the resumed campaign can skip.
    pub fn skippable(&self) -> usize {
        self.completed.len()
    }
}

/// Why a journal could not be opened for resume.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The directory holds no journal to resume.
    Missing(PathBuf),
    /// The journal was produced by different code or a different
    /// configuration.
    MetaMismatch {
        field: &'static str,
        journal: String,
        current: String,
    },
    /// A non-final record failed to parse (final truncated lines are
    /// tolerated: they are the expected residue of a kill mid-append).
    Corrupt { line: usize, reason: String },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Missing(dir) => write!(
                f,
                "no campaign journal at {} — start a fresh run instead of --resume",
                dir.join(JOURNAL_FILE).display()
            ),
            JournalError::MetaMismatch {
                field,
                journal,
                current,
            } => write!(
                f,
                "campaign {field} mismatch: journal was written by {journal:?} but this run \
                 is {current:?}; refusing to mix results from different code or configs"
            ),
            JournalError::Corrupt { line, reason } => {
                write!(f, "corrupt journal record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The append-only campaign journal. One record per line; every append
/// is flushed and fsynced before the writer returns, so a SIGKILL loses
/// at most the record being written — which replay then classifies as
/// an interrupted cell. Every record carries a `crc` field (FNV-1a 64
/// of the record without it), so replay detects a bit-rotted record —
/// not just a torn one — instead of silently resurrecting a mutated
/// result row.
#[derive(Debug)]
pub struct Journal {
    file: FsFile,
    /// What replay found when this journal was opened (empty for a
    /// fresh campaign).
    pub replay: JournalReplay,
}

impl Journal {
    /// Start a fresh campaign in `dir` (created if missing). Fails if a
    /// journal already exists there — resuming must be explicit.
    pub fn create(dir: &Path, meta: &CampaignMeta) -> Result<Journal, JournalError> {
        Journal::create_on(&Fs::real(), dir, meta)
    }

    /// [`Journal::create`] through an explicit filesystem seam, so the
    /// campaign service (and the fault campaigns) inject disk faults
    /// into every append.
    pub fn create_on(fs: &Fs, dir: &Path, meta: &CampaignMeta) -> Result<Journal, JournalError> {
        fs.create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        if path.exists() {
            return Err(JournalError::Io(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds a campaign journal; use --resume or a fresh directory",
                    dir.display()
                ),
            )));
        }
        let file = fs.create_new_append(&path)?;
        let mut j = Journal {
            file,
            replay: JournalReplay::default(),
        };
        j.append(Json::Obj(vec![
            ("event".into(), Json::str("meta")),
            ("version".into(), Json::u64(JOURNAL_VERSION)),
            ("git_sha".into(), Json::str(&meta.git_sha)),
            ("config_hash".into(), Json::str(&meta.config_hash)),
            ("cells".into(), Json::u64(meta.cells as u64)),
        ]))?;
        Ok(j)
    }

    /// Reopen an existing campaign: validate its meta stamp against
    /// `meta`, replay every record, and return the journal positioned
    /// for appending.
    pub fn resume(dir: &Path, meta: &CampaignMeta) -> Result<Journal, JournalError> {
        Journal::resume_on(&Fs::real(), dir, meta)
    }

    /// [`Journal::resume`] through an explicit filesystem seam. The
    /// replay read is subject to short-read / bit-flip injection; a
    /// truncated tail is tolerated (torn final line), a corrupted
    /// interior record is a structured [`JournalError::Corrupt`].
    pub fn resume_on(fs: &Fs, dir: &Path, meta: &CampaignMeta) -> Result<Journal, JournalError> {
        let path = dir.join(JOURNAL_FILE);
        if !path.exists() {
            return Err(JournalError::Missing(dir.to_path_buf()));
        }
        let text = fs.read_to_string(&path)?;
        let replay = replay_records(&text, meta)?;
        let file = fs.open_append(&path)?;
        Ok(Journal { file, replay })
    }

    fn append(&mut self, record: Json) -> io::Result<()> {
        let mut line = stamp_crc(record).render();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Record that `cell` (attempt `attempt`, 1-based) is starting.
    pub fn record_start(&mut self, cell: &str, attempt: u32) -> io::Result<()> {
        self.append(Json::Obj(vec![
            ("event".into(), Json::str("start")),
            ("cell".into(), Json::str(cell)),
            ("attempt".into(), Json::u64(u64::from(attempt))),
        ]))
    }

    /// Record that `cell` finished, with its result row.
    pub fn record_finish(&mut self, cell: &str, row: Json) -> io::Result<()> {
        self.append(Json::Obj(vec![
            ("event".into(), Json::str("finish")),
            ("cell".into(), Json::str(cell)),
            ("row".into(), row),
        ]))
    }

    /// Record that `cell` failed terminally after `attempts` tries.
    /// This *releases* the cell: it is no longer "in progress", so a
    /// resumed campaign re-runs it rather than considering it stuck.
    pub fn record_fail(&mut self, cell: &str, attempts: u32, error: &str) -> io::Result<()> {
        self.append(Json::Obj(vec![
            ("event".into(), Json::str("fail")),
            ("cell".into(), Json::str(cell)),
            ("attempts".into(), Json::u64(u64::from(attempts))),
            ("error".into(), Json::str(error)),
        ]))
    }
}

/// Append a `crc` field — the [`fingerprint`] of the record rendered
/// without it — to a record object.
fn stamp_crc(record: Json) -> Json {
    let crc = fingerprint(&record.render());
    match record {
        Json::Obj(mut fields) => {
            fields.push(("crc".into(), Json::Str(crc)));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// Verify and strip a record's `crc` field. Records without one (older
/// journals) pass through unchecked; a present-but-wrong crc is the
/// signature of bit rot and returns `Err` with the reason.
fn check_crc(record: Json) -> Result<Json, String> {
    let Json::Obj(mut fields) = record else {
        return Ok(record);
    };
    let Some(at) = fields.iter().position(|(k, _)| k == "crc") else {
        return Ok(Json::Obj(fields));
    };
    let (_, crc) = fields.remove(at);
    let stripped = Json::Obj(fields);
    let expected = fingerprint(&stripped.render());
    match crc.as_str() {
        Some(found) if found == expected => Ok(stripped),
        _ => Err(format!(
            "record checksum mismatch (expected {expected}, found {})",
            crc.as_str().unwrap_or("<non-string>")
        )),
    }
}

fn replay_records(text: &str, meta: &CampaignMeta) -> Result<JournalReplay, JournalError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut replay = JournalReplay::default();
    let mut started: Vec<String> = Vec::new();
    let mut saw_meta = false;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match Json::parse(line).and_then(check_crc) {
            Ok(r) => r,
            // A torn final line is the expected residue of a kill
            // mid-append; anything earlier is real corruption. (A crc
            // mismatch on the final line is the same residue: the tail
            // of a torn append can still parse as JSON.)
            Err(reason) if i + 1 == lines.len() => {
                let _ = reason;
                continue;
            }
            Err(reason) => {
                return Err(JournalError::Corrupt {
                    line: i + 1,
                    reason,
                })
            }
        };
        let event = record.get("event").and_then(Json::as_str).unwrap_or("");
        match event {
            "meta" => {
                saw_meta = true;
                check_meta(&record, "version", &JOURNAL_VERSION.to_string(), |r, k| {
                    r.get(k).and_then(Json::as_u64).map(|v| v.to_string())
                })?;
                check_meta(&record, "git_sha", &meta.git_sha, |r, k| {
                    r.get(k).and_then(Json::as_str).map(str::to_string)
                })?;
                check_meta(&record, "config_hash", &meta.config_hash, |r, k| {
                    r.get(k).and_then(Json::as_str).map(str::to_string)
                })?;
            }
            "start" => {
                if let Some(cell) = record.get("cell").and_then(Json::as_str) {
                    started.push(cell.to_string());
                }
            }
            "finish" => {
                if let (Some(cell), Some(row)) =
                    (record.get("cell").and_then(Json::as_str), record.get("row"))
                {
                    started.retain(|c| c != cell);
                    replay.failed.remove(cell);
                    replay.completed.insert(cell.to_string(), row.clone());
                }
            }
            "fail" => {
                if let Some(cell) = record.get("cell").and_then(Json::as_str) {
                    started.retain(|c| c != cell);
                    let attempts = record.get("attempts").and_then(Json::as_u64).unwrap_or(1);
                    let error = record
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    replay.failed.insert(cell.to_string(), (attempts, error));
                }
            }
            other => {
                return Err(JournalError::Corrupt {
                    line: i + 1,
                    reason: format!("unknown event {other:?}"),
                })
            }
        }
    }
    if !saw_meta {
        return Err(JournalError::Corrupt {
            line: 1,
            reason: "journal has no meta record".to_string(),
        });
    }
    started.sort();
    started.dedup();
    // a cell both completed (earlier attempt) and restarted: the restart
    // wins — it must re-run
    for cell in &started {
        replay.completed.remove(cell);
    }
    replay.interrupted = started;
    Ok(replay)
}

fn check_meta(
    record: &Json,
    field: &'static str,
    current: &str,
    read: impl Fn(&Json, &str) -> Option<String>,
) -> Result<(), JournalError> {
    let journal = read(record, field).unwrap_or_default();
    if journal != current {
        return Err(JournalError::MetaMismatch {
            field,
            journal,
            current: current.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write as _;

    fn meta() -> CampaignMeta {
        CampaignMeta {
            git_sha: "abc123".into(),
            config_hash: "deadbeef".into(),
            cells: 4,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcmp_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn json_round_trips_losslessly() {
        let v = Json::Obj(vec![
            ("a".into(), Json::u64(u64::MAX)),
            ("b".into(), Json::f64(0.1 + 0.2)),
            ("s".into(), Json::str("quote \" slash \\ nl \n tab \t")),
            (
                "arr".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::f64(-1.5e-300)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.render(), text, "second render is identical");
        assert_eq!(back.get("a").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("b").unwrap().as_f64(), Some(0.1 + 0.2));
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = tmpdir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.csv");
        write_atomic(&path, "first\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        assert!(
            !path.with_file_name("rows.csv.tmp").exists(),
            "tmp file is consumed by the rename"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_replay_classifies_cells() {
        let dir = tmpdir("replay");
        let mut j = Journal::create(&dir, &meta()).unwrap();
        j.record_start("cell-a", 1).unwrap();
        j.record_finish("cell-a", Json::Obj(vec![("x".into(), Json::u64(7))]))
            .unwrap();
        j.record_start("cell-b", 1).unwrap();
        j.record_fail("cell-b", 1, "watchdog").unwrap();
        j.record_start("cell-c", 1).unwrap(); // killed mid-flight
        drop(j);

        let j = Journal::resume(&dir, &meta()).unwrap();
        assert_eq!(j.replay.skippable(), 1);
        assert_eq!(
            j.replay.completed["cell-a"].get("x").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(j.replay.failed["cell-b"].1, "watchdog");
        assert_eq!(j.replay.interrupted, vec!["cell-c".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let dir = tmpdir("torn");
        let mut j = Journal::create(&dir, &meta()).unwrap();
        j.record_start("cell-a", 1).unwrap();
        j.record_finish("cell-a", Json::Null).unwrap();
        drop(j);
        // simulate a kill mid-append: half a record, no newline
        let path = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"finish\",\"cell\":\"cell-b\",\"ro")
            .unwrap();
        drop(f);
        let j = Journal::resume(&dir, &meta()).unwrap();
        assert_eq!(j.replay.skippable(), 1, "torn record is ignored");
        assert!(j.replay.interrupted.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_interior_record_is_refused() {
        // Only a torn *final* line is an expected crash residue. A
        // mangled record with valid records after it means the file
        // itself is damaged — replaying around it could silently drop
        // or resurrect cells, so resume must refuse with a structured
        // error naming the line.
        let dir = tmpdir("interior");
        let mut j = Journal::create(&dir, &meta()).unwrap();
        j.record_start("cell-a", 1).unwrap();
        j.record_finish("cell-a", Json::Null).unwrap();
        j.record_start("cell-b", 1).unwrap();
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 4, "meta + three records");
        // Bit-rot the finish record (line 3), leaving the later start
        // intact so the damage is interior, not a torn tail.
        lines[2] = lines[2].replace("\"finish\"", "\"fin")[..lines[2].len() - 9].to_string();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        match Journal::resume(&dir, &meta()) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected interior corruption refusal, got {other:?}"),
        }
        // An unknown event is the same class of damage.
        let forged = lines[..2].join("\n")
            + "\n{\"event\":\"fnish\",\"cell\":\"cell-a\"}\n"
            + &lines[3]
            + "\n";
        std::fs::write(&path, forged).unwrap();
        match Journal::resume(&dir, &meta()) {
            Err(JournalError::Corrupt { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("fnish"), "reason names the event: {reason}");
            }
            other => panic!("expected unknown-event refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_foreign_campaigns() {
        let dir = tmpdir("meta");
        drop(Journal::create(&dir, &meta()).unwrap());
        let other = CampaignMeta {
            git_sha: "fff999".into(),
            ..meta()
        };
        match Journal::resume(&dir, &other) {
            Err(JournalError::MetaMismatch { field, .. }) => assert_eq!(field, "git_sha"),
            other => panic!("expected a meta mismatch, got {other:?}"),
        }
        let other = CampaignMeta {
            config_hash: "0000".into(),
            ..meta()
        };
        assert!(matches!(
            Journal::resume(&dir, &other),
            Err(JournalError::MetaMismatch {
                field: "config_hash",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_journal_and_resume_requires_one() {
        let dir = tmpdir("exists");
        drop(Journal::create(&dir, &meta()).unwrap());
        assert!(Journal::create(&dir, &meta()).is_err());
        let empty = tmpdir("empty");
        assert!(matches!(
            Journal::resume(&empty, &meta()),
            Err(JournalError::Missing(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restarted_cell_reruns_even_after_an_earlier_finish() {
        let dir = tmpdir("restart");
        let mut j = Journal::create(&dir, &meta()).unwrap();
        j.record_start("cell-a", 1).unwrap();
        j.record_finish("cell-a", Json::Null).unwrap();
        j.record_start("cell-a", 1).unwrap(); // re-run began, then kill
        drop(j);
        let j = Journal::resume(&dir, &meta()).unwrap();
        assert!(j.replay.completed.is_empty());
        assert_eq!(j.replay.interrupted, vec!["cell-a".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_mid_campaign_fails_structured_and_resume_replays_cleanly() {
        use crate::fsx::{Fs, FsFaultConfig};
        let dir = tmpdir("enospc");
        // A healthy campaign journals one finished cell...
        let mut j = Journal::create(&dir, &meta()).unwrap();
        j.record_start("cell-a", 1).unwrap();
        j.record_finish("cell-a", Json::Obj(vec![("x".into(), Json::u64(7))]))
            .unwrap();
        drop(j);
        // ...then the disk fills: every further append fails with a
        // structured StorageFull error, never a panic.
        let full = Fs::faulty(FsFaultConfig {
            seed: 42,
            enospc: 1.0,
            ..FsFaultConfig::default()
        });
        let mut j = Journal::resume_on(&full, &dir, &meta()).unwrap();
        assert_eq!(j.replay.skippable(), 1);
        let err = j.record_start("cell-b", 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let err = j.record_finish("cell-b", Json::Null).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(j);
        // A restart on a recovered disk replays cleanly from the last
        // complete record: cell-a finished, nothing else.
        let j = Journal::resume(&dir, &meta()).unwrap();
        assert_eq!(j.replay.skippable(), 1);
        assert!(j.replay.interrupted.is_empty());
        assert!(j.replay.failed.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_mid_record_fails_structured_and_resume_tolerates_residue() {
        use crate::fsx::{Fs, FsFaultConfig};
        let dir = tmpdir("tornappend");
        let mut j = Journal::create(&dir, &meta()).unwrap();
        j.record_start("cell-a", 1).unwrap();
        j.record_finish("cell-a", Json::u64(1)).unwrap();
        drop(j);
        // The torn append persists a strict prefix of the record — the
        // on-disk residue of a crash mid-write — and reports an error.
        let torn = Fs::faulty(FsFaultConfig {
            seed: 7,
            torn_write: 1.0,
            ..FsFaultConfig::default()
        });
        let mut j = Journal::resume_on(&torn, &dir, &meta()).unwrap();
        assert!(j.record_finish("cell-b", Json::u64(2)).is_err());
        drop(j);
        // Replay tolerates the torn final line and keeps every record
        // before it.
        let j = Journal::resume(&dir, &meta()).unwrap();
        assert_eq!(j.replay.skippable(), 1);
        assert!(!j.replay.completed.contains_key("cell-b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_rotted_record_is_caught_by_the_crc() {
        use crate::fsx::{Fs, FsFaultConfig};
        let dir = tmpdir("bitrot");
        let mut j = Journal::create(&dir, &meta()).unwrap();
        j.record_start("cell-a", 1).unwrap();
        j.record_finish("cell-a", Json::Obj(vec![("x".into(), Json::u64(1000))]))
            .unwrap();
        j.record_start("cell-b", 1).unwrap();
        j.record_fail("cell-b", 1, "watchdog").unwrap();
        drop(j);
        // Resume through a bit-flipping fs until an injected flip lands
        // on a record and corrupts it. Every outcome must be either a
        // clean replay (flip hit a digit the crc catches → Corrupt) or
        // a structured refusal — never a silently mutated result row.
        let mut caught = false;
        for seed in 0..200u64 {
            let fs = Fs::faulty(FsFaultConfig {
                seed,
                bit_flip: 1.0,
                ..FsFaultConfig::default()
            });
            match Journal::resume_on(&fs, &dir, &meta()) {
                Ok(j) => {
                    // The flip landed in the (ignorable) torn-tail
                    // position or produced a record that still crc-
                    // verified — which means it verified *unchanged*.
                    if let Some(row) = j.replay.completed.get("cell-a") {
                        assert_eq!(row.get("x").unwrap().as_u64(), Some(1000));
                    }
                }
                Err(JournalError::Corrupt { .. }) | Err(JournalError::MetaMismatch { .. }) => {
                    caught = true;
                }
                Err(JournalError::Io(_)) | Err(JournalError::Missing(_)) => {}
            }
        }
        assert!(caught, "some flips must be caught as structured corruption");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_eq!(fingerprint("").len(), 16);
    }
}
