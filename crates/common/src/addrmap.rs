//! `AddrMap`: an open-addressed, insertion-ordered map keyed by line
//! address, for transient coherence state on the cycle path.
//!
//! `std::collections::HashMap` hashes every lookup through SipHash and
//! iterates in an order that changes from process to process (the
//! hasher is randomly seeded). Both properties are wrong for the hot
//! state of a deterministic simulator: the hashing dominates the
//! per-cycle profile, and the iteration order leaks into snapshot
//! digests and state dumps unless every consumer collects-and-sorts.
//!
//! This map fixes both:
//!
//! * Keys are line addresses — already well-distributed integers — so
//!   a single Fibonacci multiply (`key * 2^64/φ`, top bits as the
//!   slot) replaces SipHash. Lookups are one multiply, one shift and a
//!   short linear probe over a power-of-two slot table.
//! * Entries live in a dense `Vec` in insertion order; the slot table
//!   holds only indices into it. Iteration walks the dense vector, so
//!   its order is a pure function of the operation history — two maps
//!   that executed the same inserts and removes iterate identically,
//!   on every platform, in every process. Removal swaps the last entry
//!   into the hole (and fixes its slot), which keeps the order
//!   deterministic without tombstones.
//!
//! The [`Persist`](crate::persist::Persist) encoding writes entries in
//! iteration order, so a map restored from a checkpoint iterates
//! exactly like the captured one — snapshot digests can walk live maps
//! directly instead of sorting defensive copies.

use crate::persist::{ByteReader, ByteWriter, Persist, PersistError};

/// Slot-table sentinel for an empty slot.
const EMPTY: u32 = u32::MAX;

/// `2^64 / φ`, the Fibonacci hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest slot-table size allocated on first insert.
const MIN_CAP: usize = 8;

/// An insertion-ordered map from line address to `V`, open-addressed
/// with Fibonacci hashing. See the module docs for the determinism
/// contract.
#[derive(Clone, Debug)]
pub struct AddrMap<V> {
    /// Dense entries in insertion order (perturbed only by the
    /// deterministic swap-remove on removal).
    entries: Vec<(u64, V)>,
    /// Power-of-two slot table of indices into `entries`.
    index: Vec<u32>,
    /// `64 - log2(index.len())`: the Fibonacci hash keeps its top bits.
    shift: u32,
}

impl<V> Default for AddrMap<V> {
    fn default() -> Self {
        AddrMap::new()
    }
}

impl<V> AddrMap<V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        AddrMap {
            entries: Vec::new(),
            index: Vec::new(),
            shift: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove every entry (keeps the allocations).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.fill(EMPTY);
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find_slot(&self, key: u64) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = self.slot_of(key);
        loop {
            let e = self.index[slot];
            if e == EMPTY {
                return None;
            }
            if self.entries[e as usize].0 == key {
                return Some(slot);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find_slot(key).is_some()
    }

    /// Shared view of the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find_slot(key)
            .map(|s| &self.entries[self.index[s] as usize].1)
    }

    /// Mutable view of the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find_slot(key)
            .map(|s| &mut self.entries[self.index[s] as usize].1)
    }

    /// Double the slot table and re-point it at the dense entries.
    #[cold]
    fn grow(&mut self) {
        let cap = (self.index.len() * 2).max(MIN_CAP);
        self.index.clear();
        self.index.resize(cap, EMPTY);
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for (i, &(key, _)) in self.entries.iter().enumerate() {
            let mut slot = (key.wrapping_mul(FIB) >> self.shift) as usize;
            while self.index[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = i as u32;
        }
    }

    /// Insert or replace, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if let Some(slot) = self.find_slot(key) {
            let e = self.index[slot] as usize;
            return Some(std::mem::replace(&mut self.entries[e].1, value));
        }
        // Keep the table at most half full so probes stay short.
        if (self.entries.len() + 1) * 2 > self.index.len() {
            self.grow();
        }
        let mask = self.index.len() - 1;
        let mut slot = self.slot_of(key);
        while self.index[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        self.index[slot] = self.entries.len() as u32;
        self.entries.push((key, value));
        None
    }

    /// The value for `key`, inserting `V::default()` when absent
    /// (the `entry(k).or_default()` idiom).
    pub fn get_or_default(&mut self, key: u64) -> &mut V
    where
        V: Default,
    {
        if self.find_slot(key).is_none() {
            self.insert(key, V::default());
        }
        self.get_mut(key).expect("just ensured present")
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.find_slot(key)?;
        let e = self.index[slot] as usize;
        // Backward-shift deletion: close the probe chain the hole
        // would otherwise break.
        let mask = self.index.len() - 1;
        let mut hole = slot;
        let mut probe = slot;
        loop {
            probe = (probe + 1) & mask;
            let next = self.index[probe];
            if next == EMPTY {
                break;
            }
            let ideal = self.slot_of(self.entries[next as usize].0);
            // Move `probe`'s entry into the hole iff the hole lies on
            // its probe path (cyclic interval test).
            let reachable = if probe >= hole {
                ideal <= hole || ideal > probe
            } else {
                ideal <= hole && ideal > probe
            };
            if reachable {
                self.index[hole] = next;
                hole = probe;
            }
        }
        self.index[hole] = EMPTY;
        // Swap-remove from the dense vector; re-point the slot of the
        // entry that moved into the freed position. Probe by the moved
        // key but match on the stale index — the key may legally appear
        // at `e` too (it just moved there).
        let (_, value) = self.entries.swap_remove(e);
        if e < self.entries.len() {
            let stale = self.entries.len() as u32;
            let mut slot = self.slot_of(self.entries[e].0);
            while self.index[slot] != stale {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = e as u32;
        }
        Some(value)
    }

    /// Entries in deterministic (insertion-history) order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in deterministic (insertion-history) order.
    pub fn keys(&self) -> impl Iterator<Item = &u64> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in deterministic (insertion-history) order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }
}

/// Entries travel in iteration order, so a restored map iterates — and
/// therefore digests and re-encodes — exactly like the captured one.
impl<V: Persist> Persist for AddrMap<V> {
    fn save(&self, w: &mut ByteWriter) {
        w.usize(self.entries.len());
        for (k, v) in &self.entries {
            w.u64(*k);
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader) -> Result<Self, PersistError> {
        let n = r.len_prefix()?;
        let mut map = AddrMap::new();
        for _ in 0..n {
            let k = r.u64()?;
            let v = V::load(r)?;
            if map.insert(k, v).is_some() {
                return Err(r.err("duplicate key in encoded AddrMap"));
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{ByteReader, ByteWriter};

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = AddrMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(0x40, 1u32), None);
        assert_eq!(m.insert(0x80, 2), None);
        assert_eq!(m.insert(0x40, 3), Some(1), "replace returns the old value");
        assert_eq!(m.get(0x40), Some(&3));
        assert_eq!(m.get(0xC0), None);
        *m.get_mut(0x80).unwrap() = 9;
        assert_eq!(m.remove(0x80), Some(9));
        assert_eq!(m.remove(0x80), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(0x40));
    }

    #[test]
    fn get_or_default_matches_entry_or_default() {
        let mut m: AddrMap<Vec<u32>> = AddrMap::new();
        m.get_or_default(7).push(1);
        m.get_or_default(7).push(2);
        assert_eq!(m.get(7), Some(&vec![1, 2]));
    }

    #[test]
    fn agrees_with_std_hashmap_under_random_ops() {
        use std::collections::HashMap;
        let mut m = AddrMap::new();
        let mut reference = HashMap::new();
        // xorshift-style deterministic op stream
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 512) << 6; // collide often
            match x % 3 {
                0 => assert_eq!(m.insert(key, step), reference.insert(key, step)),
                1 => assert_eq!(m.remove(key), reference.remove(&key)),
                _ => assert_eq!(m.get(key), reference.get(&key)),
            }
            assert_eq!(m.len(), reference.len());
        }
        let mut ours: Vec<(u64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        let mut theirs: Vec<(u64, u64)> = reference.into_iter().collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn iteration_order_is_a_function_of_history() {
        let build = || {
            let mut m = AddrMap::new();
            for k in [9u64, 3, 7, 1, 5, 11, 2] {
                m.insert(k << 6, k);
            }
            m.remove(3 << 6);
            m.remove(11 << 6);
            m.insert(13 << 6, 13);
            m
        };
        let a: Vec<u64> = build().keys().copied().collect();
        let b: Vec<u64> = build().keys().copied().collect();
        assert_eq!(a, b, "same history must iterate identically");
    }

    #[test]
    fn persist_preserves_iteration_order() {
        let mut m = AddrMap::new();
        for k in [42u64, 7, 99, 13] {
            m.insert(k, k * 2);
        }
        m.remove(7);
        let mut w = ByteWriter::new();
        m.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let restored: AddrMap<u64> = Persist::load(&mut r).unwrap();
        r.finish().unwrap();
        let live: Vec<(u64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        let back: Vec<(u64, u64)> = restored.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(live, back, "restored map iterates like the captured one");
        // and re-encoding is byte-identical
        let mut w2 = ByteWriter::new();
        restored.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn corrupt_duplicate_keys_are_a_structured_error() {
        let mut w = ByteWriter::new();
        w.usize(2);
        w.u64(5);
        w.u64(1);
        w.u64(5);
        w.u64(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(<AddrMap<u64> as Persist>::load(&mut r).is_err());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut m = AddrMap::new();
        for k in 0..8u64 {
            m.insert(k, k);
        }
        let mut w = ByteWriter::new();
        m.save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(<AddrMap<u64> as Persist>::load(&mut r).is_err());
        }
    }

    #[test]
    fn heavy_churn_keeps_probe_chains_consistent() {
        // Exercise backward-shift deletion: many keys mapping to few
        // slots, removed in a hostile order.
        let mut m = AddrMap::new();
        let keys: Vec<u64> = (0..64).map(|i| i * 8).collect();
        for &k in &keys {
            m.insert(k, k);
        }
        for &k in keys.iter().step_by(2) {
            assert_eq!(m.remove(k), Some(k));
        }
        for &k in keys.iter().skip(1).step_by(2) {
            assert_eq!(m.get(k), Some(&k), "survivor {k} must stay reachable");
        }
        for &k in keys.iter().step_by(2) {
            m.insert(k, k + 1);
        }
        assert_eq!(m.len(), 64);
        for &k in keys.iter().step_by(2) {
            assert_eq!(m.get(k), Some(&(k + 1)));
        }
    }
}
