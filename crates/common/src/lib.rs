//! Shared foundation types for the tiled-CMP simulation stack.
//!
//! This crate is dependency-free and holds everything the subsystem crates
//! (wire model, compression, NoC, coherence, CPU, workloads, energy) need to
//! agree on:
//!
//! * [`types`] — physical addresses, tile/core identifiers, cycle counts and
//!   the coherence-message taxonomy of the paper's Figure 4.
//! * [`config`] — the simulated machine description (Table 4 of the paper is
//!   the default: 16 tiles, 65 nm, 4 GHz, 32 KB L1, 256 KB L2 slice, 2D mesh
//!   with 75-byte unidirectional links of 5 mm).
//! * [`geometry`] — 2D-mesh coordinates and routing distances.
//! * [`stats`] — counters, histograms and online mean/variance used by every
//!   subsystem to report results.
//! * [`rng`] — a tiny deterministic `SplitMix64`/`Xoshiro256**` pair so that
//!   every simulation is exactly reproducible from a seed.
//! * [`randtest`] — a seeded randomized-testing harness built on [`rng`],
//!   used by the property suites in place of an external dependency.
//! * [`fault`] — deterministic fault injection (drop/duplicate/delay/
//!   corrupt/codec-desync) for robustness campaigns.
//! * [`fsx`] — the fallible filesystem seam every durable write routes
//!   through: a production backend and a seeded fault backend (torn
//!   writes, ENOSPC, short reads, bit flips, rename-then-crash).
//! * [`persist`] — the panic-free binary state codec that turns
//!   whole-machine checkpoints into disk bytes and back.
//! * [`addrmap`] — an open-addressed, insertion-ordered map keyed by
//!   line address (Fibonacci hashing, deterministic iteration) for the
//!   transient coherence state on the cycle path.
//! * [`hash`] — streaming FNV-1a 64 content hashing shared by the
//!   journal's configuration fingerprints and the checkpoint cache's
//!   load-time verification digests.
//! * [`journal`] — the durable campaign journal (append-only JSONL of
//!   cell records, atomic result writes, meta stamping) that makes long
//!   matrix sweeps crash-resumable.
//! * [`snapshot`] — the [`Snapshot`] checkpoint/restore trait every
//!   component implements so the engine can checkpoint a run at cycle N
//!   and resume it bit-identically.
//! * [`smallvec`] — an inline-first vector for hot-path message plumbing.
//! * [`units`] — thin newtypes for the physical quantities that cross crate
//!   boundaries (picoseconds, watts, square millimetres, joules).

pub mod addrmap;
pub mod config;
pub mod fault;
pub mod fsx;
pub mod geometry;
pub mod hash;
pub mod journal;
pub mod persist;
pub mod randtest;
pub mod rng;
pub mod smallvec;
pub mod snapshot;
pub mod stats;
pub mod types;
pub mod units;

pub use addrmap::AddrMap;
pub use config::{CacheConfig, CmpConfig, NetworkConfig};
pub use fault::{FaultAction, FaultConfig, FaultInjector, FaultPath, FaultStats};
pub use geometry::{Coord, MeshShape};
pub use hash::Fnv64;
pub use journal::{write_atomic, CampaignMeta, Journal, JournalError, JournalReplay, Json};
pub use rng::SimRng;
pub use smallvec::SmallVec;
pub use snapshot::Snapshot;
pub use stats::{Counter, Histogram, OnlineStats};
pub use types::{Addr, Cycle, MessageClass, TileId, CONTROL_BYTES, LINE_BYTES};
