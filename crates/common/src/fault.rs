//! Deterministic fault injection.
//!
//! A [`FaultInjector`] makes one seeded decision per network-interface
//! event, so a fault campaign is exactly reproducible from its
//! configuration: the same seed, rates and window always perturb the
//! same messages. The injector is carried as an `Option` by the
//! components that consult it — when absent (the default), the hot path
//! pays a single branch and the simulated behaviour is bit-identical to
//! a build without the subsystem.
//!
//! Faults model the failure classes the robustness layer must survive:
//!
//! * **Drop / Duplicate / Delay** — message-level perturbations applied
//!   where a message enters the NoC. A dropped coherence message wedges
//!   the protocol; the simulator must convert that into a structured
//!   deadlock report, never a hang or a panic.
//! * **Corrupt** — flips bits of the carried line address, modelling a
//!   soft error in an NI buffer. The receiving controller must reject
//!   the impossible message with a [`ProtocolError`]-style finding.
//! * **Desync** — silently corrupts the *receiver* half of an address
//!   codec pair (DBRC register file / Stride base), modelling the
//!   compression-metadata corruption failure mode. The NI must detect
//!   the divergence via its sequence/checksum tag and fall back to
//!   uncompressed transmission while the pair resynchronises.

use crate::rng::SimRng;
use crate::stats::Counter;
use crate::types::Cycle;

/// What to do to one message at the network interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver untouched.
    None,
    /// Silently discard the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Hold the message for this many extra cycles before injection.
    Delay(u64),
    /// XOR this mask into the carried line address.
    Corrupt(u64),
    /// Corrupt the receiver-side codec state for this message's
    /// (destination, stream) pair.
    Desync,
}

/// Where in the machine a fault decision is being made.
///
/// The injector keeps one global decision stream regardless of path, so
/// adding a consultation site changes which messages fault but never
/// breaks seed-reproducibility: the same seed still yields the same
/// decision sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPath {
    /// A message entering the NoC at a tile's network interface.
    NiSend,
    /// A completed off-chip read leaving the memory controller — the
    /// reply plumbing back into the home L2 slice.
    MemReply,
}

/// Per-class fault rates and scheduling. All-zero rates mean "off".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injector's private decision stream.
    pub seed: u64,
    /// Probability a message is dropped.
    pub drop: f64,
    /// Probability a message is duplicated.
    pub duplicate: f64,
    /// Probability a message is delayed.
    pub delay: f64,
    /// Maximum extra delay in cycles (uniform in `[1, max]`).
    pub delay_cycles: u64,
    /// Probability a message's line address is bit-corrupted.
    pub corrupt: f64,
    /// Probability a message desynchronises its codec pair.
    pub desync: f64,
    /// Restrict injection to `[start, end)` cycles (`None` = whole run).
    pub window: Option<(Cycle, Cycle)>,
    /// Stop injecting after this many faults (`None` = unlimited).
    pub max_faults: Option<u64>,
}

impl FaultConfig {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// A campaign injecting only codec desyncs — the recoverable class.
    pub fn desync_only(seed: u64, rate: f64, max_faults: u64) -> Self {
        FaultConfig {
            seed,
            desync: rate,
            max_faults: Some(max_faults),
            ..FaultConfig::default()
        }
    }

    /// True when any fault class has a non-zero rate.
    pub fn enabled(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.delay > 0.0
            || self.corrupt > 0.0
            || self.desync > 0.0
    }
}

/// How many faults of each class were actually injected.
#[derive(Clone, Debug, Default)]
pub struct FaultStats {
    pub drops: Counter,
    pub duplicates: Counter,
    pub delays: Counter,
    pub corruptions: Counter,
    pub desyncs: Counter,
    /// Faults (of any class above) that landed on the memory-controller
    /// reply path rather than an NI send. A breakdown, not a class of
    /// its own — every such fault is also counted in its class counter
    /// and therefore excluded from [`FaultStats::total`].
    pub mem_replies: Counter,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.drops.get()
            + self.duplicates.get()
            + self.delays.get()
            + self.corruptions.get()
            + self.desyncs.get()
    }
}

/// The seeded decision-maker. One lives per simulator; every message
/// injection consults it once, in deterministic order.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector from a campaign configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = SimRng::new(cfg.seed ^ 0xFA01_7BAD_5EED_C0DE);
        FaultInjector {
            cfg,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Faults injected so far, by class.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn armed(&self, now: Cycle) -> bool {
        if let Some(max) = self.cfg.max_faults {
            if self.stats.total() >= max {
                return false;
            }
        }
        match self.cfg.window {
            Some((start, end)) => now >= start && now < end,
            None => true,
        }
    }

    /// Decide the fate of one message entering the network at `now`
    /// (equivalent to [`FaultInjector::decide_on`] with
    /// [`FaultPath::NiSend`]).
    pub fn decide(&mut self, now: Cycle) -> FaultAction {
        self.decide_on(FaultPath::NiSend, now)
    }

    /// Decide the fate of one message on `path` at `now`.
    ///
    /// The classes are rolled in a fixed order (drop, duplicate, delay,
    /// corrupt, desync) and the first hit wins, so per-message RNG
    /// consumption is identical regardless of outcome — a prerequisite
    /// for reproducing a campaign from its seed. A desync rolled on the
    /// memory-reply path degrades to [`FaultAction::None`] (and is not
    /// counted): no address codec sits between the memory controller
    /// and the home slice, so there is no pair state to desynchronise.
    pub fn decide_on(&mut self, path: FaultPath, now: Cycle) -> FaultAction {
        // Always burn the same number of draws per call.
        let rolls = [
            self.rng.f64(),
            self.rng.f64(),
            self.rng.f64(),
            self.rng.f64(),
            self.rng.f64(),
        ];
        let aux = self.rng.next_u64();
        if !self.armed(now) {
            return FaultAction::None;
        }
        let action = if rolls[0] < self.cfg.drop {
            self.stats.drops.inc();
            FaultAction::Drop
        } else if rolls[1] < self.cfg.duplicate {
            self.stats.duplicates.inc();
            FaultAction::Duplicate
        } else if rolls[2] < self.cfg.delay {
            self.stats.delays.inc();
            let max = self.cfg.delay_cycles.max(1);
            FaultAction::Delay(1 + aux % max)
        } else if rolls[3] < self.cfg.corrupt {
            self.stats.corruptions.inc();
            // Flip one low address bit: low bits select the home tile, so
            // the corrupted message arrives at a controller that can prove
            // it impossible (wrong-home check) instead of silently reading
            // the wrong line.
            FaultAction::Corrupt(1 << (aux % 4))
        } else if rolls[4] < self.cfg.desync {
            if path == FaultPath::MemReply {
                return FaultAction::None;
            }
            self.stats.desyncs.inc();
            FaultAction::Desync
        } else {
            FaultAction::None
        };
        if path == FaultPath::MemReply && action != FaultAction::None {
            self.stats.mem_replies.inc();
        }
        action
    }
}

crate::impl_persist!(FaultStats {
    drops,
    duplicates,
    delays,
    corruptions,
    desyncs,
    mem_replies,
});

/// The configuration is immutable (the warm key covers it); only the
/// decision stream and counters travel through checkpoint bytes.
impl crate::persist::PersistState for FaultInjector {
    fn save_state(&self, w: &mut crate::persist::ByteWriter) {
        crate::persist::Persist::save(&self.rng, w);
        crate::persist::Persist::save(&self.stats, w);
    }
    fn load_state(
        &mut self,
        r: &mut crate::persist::ByteReader,
    ) -> Result<(), crate::persist::PersistError> {
        self.rng = crate::persist::Persist::load(r)?;
        self.stats = crate::persist::Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_never_faults() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        for now in 0..10_000 {
            assert_eq!(inj.decide(now), FaultAction::None);
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn decisions_are_reproducible_from_the_seed() {
        let cfg = FaultConfig {
            seed: 77,
            drop: 0.01,
            duplicate: 0.01,
            delay: 0.02,
            delay_cycles: 16,
            corrupt: 0.01,
            desync: 0.05,
            ..FaultConfig::default()
        };
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        for now in 0..5_000 {
            assert_eq!(a.decide(now), b.decide(now));
        }
        assert!(a.stats().total() > 0, "rates this high must fire");
    }

    #[test]
    fn window_gates_injection() {
        let cfg = FaultConfig {
            seed: 3,
            drop: 1.0,
            window: Some((100, 200)),
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg);
        assert_eq!(inj.decide(50), FaultAction::None);
        assert_eq!(inj.decide(150), FaultAction::Drop);
        assert_eq!(inj.decide(250), FaultAction::None);
        assert_eq!(inj.stats().drops.get(), 1);
    }

    #[test]
    fn max_faults_caps_the_campaign() {
        let cfg = FaultConfig {
            seed: 9,
            desync: 1.0,
            max_faults: Some(3),
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg);
        let fired = (0..100)
            .filter(|&n| inj.decide(n) != FaultAction::None)
            .count();
        assert_eq!(fired, 3);
        assert_eq!(inj.stats().desyncs.get(), 3);
    }

    #[test]
    fn outcome_does_not_skew_later_decisions() {
        // Two injectors with different window settings must agree on all
        // decisions outside the differing region: per-call RNG use is
        // constant.
        let base = FaultConfig {
            seed: 21,
            drop: 0.5,
            ..FaultConfig::default()
        };
        let gated = FaultConfig {
            window: Some((500, 1_000)),
            ..base.clone()
        };
        let mut a = FaultInjector::new(base);
        let mut b = FaultInjector::new(gated);
        let mut in_window_disagreements = 0;
        for now in 0..1_000 {
            let da = a.decide(now);
            let db = b.decide(now);
            if now < 500 {
                // window closed for b: it must skip the fault but burn
                // the same draws
                assert_eq!(db, FaultAction::None);
            } else if da != db {
                in_window_disagreements += 1;
            }
        }
        assert_eq!(in_window_disagreements, 0, "same draws, both armed");
        assert!(b.stats().drops.get() > 0, "b fires inside its window");
    }

    #[test]
    fn mem_reply_path_shares_the_decision_stream() {
        let cfg = FaultConfig {
            seed: 77,
            drop: 0.01,
            duplicate: 0.01,
            delay: 0.02,
            delay_cycles: 16,
            corrupt: 0.01,
            desync: 0.05,
            ..FaultConfig::default()
        };
        // Apart from desync degradation, the path never changes which
        // action a given draw yields.
        let mut ni = FaultInjector::new(cfg.clone());
        let mut mem = FaultInjector::new(cfg);
        for now in 0..5_000 {
            let a = ni.decide_on(FaultPath::NiSend, now);
            let b = mem.decide_on(FaultPath::MemReply, now);
            match a {
                FaultAction::Desync => assert_eq!(b, FaultAction::None),
                other => assert_eq!(b, other),
            }
        }
        assert!(mem.stats().mem_replies.get() > 0, "rates this high fire");
        assert_eq!(mem.stats().desyncs.get(), 0, "no codec on the mem path");
        // The breakdown counter is a subset of the class counters.
        let s = mem.stats();
        assert_eq!(
            s.mem_replies.get(),
            s.total(),
            "every fault this run was a mem-reply fault"
        );
    }

    #[test]
    fn corrupt_masks_stay_in_home_selecting_bits() {
        let cfg = FaultConfig {
            seed: 4,
            corrupt: 1.0,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg);
        for now in 0..200 {
            match inj.decide(now) {
                FaultAction::Corrupt(mask) => {
                    assert!(mask.is_power_of_two() && mask <= 8, "mask {mask:#x}")
                }
                other => panic!("expected corruption, got {other:?}"),
            }
        }
    }
}
