//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the simulator (workload generation, tie
//! breaking) draws from a [`SimRng`] seeded from the experiment
//! configuration, so identical configurations always produce identical
//! cycle counts and energies. The generator is `xoshiro256**` seeded via
//! `SplitMix64` — the standard, well-tested combination — implemented
//! locally to keep this crate dependency-free.

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic RNG (`xoshiro256**`).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent stream for a subcomponent. `tag` should be a
    /// stable label (e.g. a core index) so streams never collide.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift
    /// reduction; bias is negligible for the bounds used here. Panics if
    /// `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Geometric-ish burst length: 1 + Geometric(p) capped at `max`.
    /// Used for compute-burst and run-length generation in workloads.
    pub fn burst(&mut self, mean: f64, max: u64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u = self.f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor() as u64;
        (1 + g).min(max)
    }

    /// Sample an index from a discrete cumulative distribution
    /// (`cdf` must be non-decreasing, ending at ~1.0).
    pub fn pick_cdf(&mut self, cdf: &[f64]) -> usize {
        let u = self.f64();
        match cdf.iter().position(|&c| u < c) {
            Some(i) => i,
            None => cdf.len().saturating_sub(1),
        }
    }
}

impl crate::persist::Persist for SimRng {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        for v in self.s {
            w.u64(v);
        }
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        Ok(SimRng {
            s: [r.u64()?, r.u64()?, r.u64()?, r.u64()?],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn f64_is_unit_interval_uniformish() {
        let mut rng = SimRng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn burst_respects_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.burst(8.0, 100);
            assert!((1..=100).contains(&v));
        }
        // mean should be in the right ballpark
        let mean: f64 = (0..20_000)
            .map(|_| rng.burst(8.0, 10_000) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 8.0).abs() < 0.5, "burst mean {mean} far from 8");
    }

    #[test]
    fn pick_cdf_matches_weights() {
        let mut rng = SimRng::new(11);
        let cdf = [0.1, 0.6, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[rng.pick_cdf(&cdf)] += 1;
        }
        assert!((counts[0] as f64 / 1e5 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 1e5 - 0.5).abs() < 0.01);
        assert!((counts[2] as f64 / 1e5 - 0.4).abs() < 0.01);
    }
}
