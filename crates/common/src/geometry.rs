//! 2D-mesh geometry: tile coordinates, neighbourhoods and hop distances.
//!
//! Tiles are laid out row-major on a `width × height` grid. The paper's
//! configuration is a 4×4 mesh of 25 mm² tiles, so inter-router links
//! measure roughly 5 mm (Table 4).

use crate::types::TileId;

/// A tile position on the mesh: `x` grows east, `y` grows south.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

/// One of the four mesh directions plus the local ejection port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    East,
    West,
    North,
    South,
    /// Delivery to the local tile (network-interface ejection port).
    Local,
}

impl Direction {
    /// The four link directions (excluding `Local`).
    pub const LINKS: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// All five router output ports.
    pub const ALL: [Direction; 5] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
        Direction::Local,
    ];

    /// Dense index for port tables (`Local` is last).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }

    /// The direction a flit arriving *from* this direction came in on.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Local => Direction::Local,
        }
    }
}

/// The rectangular mesh the tiles live on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MeshShape {
    pub width: u16,
    pub height: u16,
}

impl MeshShape {
    /// A `width × height` mesh. Panics when either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        MeshShape { width, height }
    }

    /// A square `side × side` mesh (the paper's default is 4×4).
    pub fn square(side: u16) -> Self {
        Self::new(side, side)
    }

    /// Total number of tiles.
    #[inline]
    pub fn tiles(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Row-major coordinate of a tile id.
    #[inline]
    pub fn coord(&self, tile: TileId) -> Coord {
        let idx = tile.index();
        debug_assert!(idx < self.tiles(), "tile {idx} outside mesh");
        Coord {
            x: (idx % self.width as usize) as u16,
            y: (idx / self.width as usize) as u16,
        }
    }

    /// Row-major tile id of a coordinate.
    #[inline]
    pub fn tile(&self, c: Coord) -> TileId {
        debug_assert!(c.x < self.width && c.y < self.height);
        TileId::from(c.y as usize * self.width as usize + c.x as usize)
    }

    /// Manhattan hop distance between two tiles (number of links a message
    /// traverses under dimension-order routing).
    #[inline]
    pub fn hops(&self, a: TileId, b: TileId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as u32
    }

    /// Next output port under XY dimension-order routing from `here`
    /// towards `dest` (X first, then Y; `Local` when arrived).
    pub fn xy_route(&self, here: TileId, dest: TileId) -> Direction {
        let c = self.coord(here);
        let d = self.coord(dest);
        if d.x > c.x {
            Direction::East
        } else if d.x < c.x {
            Direction::West
        } else if d.y > c.y {
            Direction::South
        } else if d.y < c.y {
            Direction::North
        } else {
            Direction::Local
        }
    }

    /// The neighbouring tile in `dir`, or `None` at a mesh edge.
    pub fn neighbor(&self, tile: TileId, dir: Direction) -> Option<TileId> {
        let c = self.coord(tile);
        let n = match dir {
            Direction::East if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            Direction::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            Direction::South if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            Direction::North if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            _ => return None,
        };
        Some(self.tile(n))
    }

    /// Iterator over all tile ids, row-major.
    pub fn iter_tiles(&self) -> impl Iterator<Item = TileId> + use<> {
        (0..self.tiles()).map(TileId::from)
    }

    /// Number of unidirectional links in the mesh
    /// (`2 · (2·w·h − w − h)`).
    pub fn unidirectional_links(&self) -> usize {
        let w = self.width as usize;
        let h = self.height as usize;
        2 * (2 * w * h - w - h)
    }
}

impl crate::persist::Persist for Direction {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        w.u8(self.index() as u8);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        let tag = r.u8()? as usize;
        Direction::ALL
            .get(tag)
            .copied()
            .ok_or_else(|| r.err("invalid Direction tag"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = MeshShape::square(4);
        for t in m.iter_tiles() {
            assert_eq!(m.tile(m.coord(t)), t);
        }
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let m = MeshShape::square(4);
        // corner to corner on a 4x4 mesh: 3 + 3 hops
        assert_eq!(m.hops(TileId(0), TileId(15)), 6);
        assert_eq!(m.hops(TileId(5), TileId(5)), 0);
        assert_eq!(m.hops(TileId(0), TileId(3)), 3);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = MeshShape::square(4);
        // from (0,0) to (2,2): east twice, then south twice
        let mut here = TileId(0);
        let dest = m.tile(Coord { x: 2, y: 2 });
        let mut path = Vec::new();
        loop {
            let dir = m.xy_route(here, dest);
            if dir == Direction::Local {
                break;
            }
            path.push(dir);
            here = m.neighbor(here, dir).expect("route stays on mesh");
        }
        assert_eq!(
            path,
            vec![
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South
            ]
        );
        assert_eq!(here, dest);
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = MeshShape::square(4);
        assert_eq!(m.neighbor(TileId(0), Direction::West), None);
        assert_eq!(m.neighbor(TileId(0), Direction::North), None);
        assert_eq!(m.neighbor(TileId(0), Direction::East), Some(TileId(1)));
        assert_eq!(m.neighbor(TileId(0), Direction::South), Some(TileId(4)));
        assert_eq!(m.neighbor(TileId(15), Direction::East), None);
        assert_eq!(m.neighbor(TileId(15), Direction::South), None);
    }

    #[test]
    fn link_count_matches_formula() {
        // 4x4 mesh: 24 bidirectional = 48 unidirectional links
        assert_eq!(MeshShape::square(4).unidirectional_links(), 48);
        // 2x2 mesh: 4 bidirectional = 8 unidirectional
        assert_eq!(MeshShape::square(2).unidirectional_links(), 8);
        // 1xN degenerates to a line
        assert_eq!(MeshShape::new(1, 4).unidirectional_links(), 6);
    }

    #[test]
    fn opposite_directions() {
        for d in Direction::LINKS {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
        assert_eq!(Direction::Local.opposite(), Direction::Local);
    }
}
