//! Checkpoint/restore seam shared by every simulation component.
//!
//! A component implements [`Snapshot`] by describing how to capture its
//! complete mutable state as an owned value and how to overwrite itself
//! from such a value. The full-system engine composes the per-component
//! snapshots into one machine-level checkpoint, so a run can be stopped
//! at a cycle boundary, forked or persisted, and resumed **bit-identically**
//! — the restored run must replay the exact same schedule as a
//! straight-through run (the determinism goldens verify this end to end).
//!
//! Two properties make the clone-based default correct here:
//!
//! * every component is deterministic plain data — RNGs are seeded
//!   [`crate::rng::SimRng`] values, queues/heaps clone their exact layout;
//! * hash-map iteration order never leaks into the simulated schedule
//!   (guarded by the cross-process determinism goldens), so a cloned map
//!   cannot perturb a resumed run even if its bucket layout differed.

/// Capture/restore of one component's complete mutable state.
pub trait Snapshot {
    /// The owned state value; typically `Self` for plain-data components.
    type State;

    /// Capture the component's state at the current instant.
    fn snapshot(&self) -> Self::State;

    /// Overwrite the component's state from a previously captured value.
    /// The component must afterwards behave exactly as it did when the
    /// snapshot was taken.
    fn restore(&mut self, state: &Self::State);
}

/// Implement [`Snapshot`] for plain-data types via `Clone`:
/// `State = Self`, snapshot = clone, restore = clone-assign.
#[macro_export]
macro_rules! impl_snapshot_clone {
    ($($t:ty),* $(,)?) => {$(
        impl $crate::snapshot::Snapshot for $t {
            type State = $t;

            fn snapshot(&self) -> Self::State {
                self.clone()
            }

            fn restore(&mut self, state: &Self::State) {
                *self = state.clone();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::Snapshot;

    #[derive(Clone, Debug, PartialEq)]
    struct Counter {
        n: u64,
    }

    crate::impl_snapshot_clone!(Counter);

    #[test]
    fn clone_based_snapshot_round_trips() {
        let mut c = Counter { n: 7 };
        let snap = c.snapshot();
        c.n = 99;
        c.restore(&snap);
        assert_eq!(c, Counter { n: 7 });
    }
}
