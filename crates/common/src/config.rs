//! The simulated machine description.
//!
//! [`CmpConfig::default`] reproduces Table 4 of the paper: a 16-core tiled
//! CMP at 65 nm, 4 GHz in-order 2-way cores, 32 KB 4-way L1 caches, 256 KB
//! 4-way L2 slices (6+2 cycles), 400-cycle memory, and a 4×4 2D mesh with
//! 75-byte unidirectional links of 5 mm.

use crate::geometry::MeshShape;

/// Parameters of one cache level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (shared across levels).
    pub line_bytes: usize,
    /// Cycles to probe the tags.
    pub tag_latency: u64,
    /// Additional cycles to read/write the data array after a tag hit.
    pub data_latency: u64,
}

impl CacheConfig {
    /// Number of sets (capacity / (ways × line)).
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Total access latency on a hit.
    pub fn hit_latency(&self) -> u64 {
        self.tag_latency + self.data_latency
    }

    /// Sanity-check invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("line size {} not a power of two", self.line_bytes));
        }
        if self.ways == 0 {
            return Err("associativity must be >= 1".into());
        }
        if self.size_bytes % (self.ways * self.line_bytes) != 0 {
            return Err(format!(
                "capacity {} not divisible by ways*line = {}",
                self.size_bytes,
                self.ways * self.line_bytes
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("set count {} not a power of two", self.sets()));
        }
        Ok(())
    }
}

/// Physical parameters of the on-chip network (independent of the wire
/// organisation, which the experiment configuration chooses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Width of one unidirectional inter-router link in bytes (Table 4:
    /// 75 bytes of 8X B-Wires in the baseline).
    pub link_bytes: usize,
    /// Physical link length in millimetres (≈5 mm for 25 mm² tiles).
    pub link_length_mm: f64,
    /// Router pipeline depth in cycles (route computation, VC/switch
    /// allocation, switch traversal).
    pub router_pipeline_cycles: u64,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Buffer depth per virtual channel, in flits.
    pub vc_buffer_flits: usize,
}

impl NetworkConfig {
    /// Sanity-check invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.link_bytes == 0 {
            return Err("link width must be non-zero".into());
        }
        if self.link_length_mm <= 0.0 {
            return Err("link length must be positive".into());
        }
        if self.virtual_channels == 0 || self.vc_buffer_flits == 0 {
            return Err("need at least one VC with at least one flit buffer".into());
        }
        Ok(())
    }
}

/// Which sharer-bookkeeping hardware the L2 home slices implement.
///
/// The paper's machine keeps a *full-map* directory: one presence bit
/// per tile alongside every L2 line. That is exact but its sharer
/// vectors are a fixed 64 bits wide here, so it cannot describe meshes
/// beyond 64 tiles. The *sparse* organisation keeps tagged entries only
/// for lines with remote copies plus a bounded table of in-flight
/// directory transactions ("directory MSHRs"), which is what lets
/// 16×16 and 32×32 meshes run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectoryConfig {
    /// Full-map presence vectors co-located with every L2 line
    /// (Table 4 machine; at most [`FULL_MAP_MAX_TILES`] tiles).
    FullMap,
    /// Sparse tagged entries with `dir_mshrs` transaction slots per
    /// home slice. Exhausting the slots is a structured protocol error
    /// naming this knob, never silent misbehaviour.
    Sparse { dir_mshrs: usize },
}

/// Widest mesh a full-map directory can describe (one u64 presence
/// vector per line).
pub const FULL_MAP_MAX_TILES: usize = 64;

/// Default in-flight transaction slots per home slice for
/// [`DirectoryConfig::Sparse`]. Sized so the default machines never
/// exhaust it (a slice can serve at most `tiles × l1_mshrs` concurrent
/// lines, but in practice far fewer are in flight at one home).
pub const DEFAULT_DIR_MSHRS: usize = 64;

impl DirectoryConfig {
    /// A sparse directory with the default MSHR depth.
    pub fn sparse() -> Self {
        DirectoryConfig::Sparse {
            dir_mshrs: DEFAULT_DIR_MSHRS,
        }
    }

    /// Short label for CSV/journal rows and error messages.
    pub fn label(&self) -> String {
        match *self {
            DirectoryConfig::FullMap => "full-map".to_string(),
            DirectoryConfig::Sparse { dir_mshrs } => format!("sparse({dir_mshrs})"),
        }
    }

    /// Wire/flag spelling: `full-map`, `sparse`, or `sparse:N`.
    /// Round-trips through [`DirectoryConfig::parse_flag`].
    pub fn flag_label(&self) -> String {
        match *self {
            DirectoryConfig::FullMap => "full-map".to_string(),
            DirectoryConfig::Sparse { dir_mshrs } => format!("sparse:{dir_mshrs}"),
        }
    }

    /// Parse the flag/wire spelling accepted by the bench binaries and
    /// the campaign service: `full-map`, `sparse` (default MSHR depth),
    /// or `sparse:N`.
    pub fn parse_flag(s: &str) -> Result<DirectoryConfig, String> {
        match s {
            "full-map" => Ok(DirectoryConfig::FullMap),
            "sparse" => Ok(DirectoryConfig::sparse()),
            other => match other.strip_prefix("sparse:") {
                Some(n) => {
                    let dir_mshrs: usize = n.parse().map_err(|_| {
                        format!("bad sparse MSHR depth {n:?} (want sparse:N with N >= 1)")
                    })?;
                    let cfg = DirectoryConfig::Sparse { dir_mshrs };
                    // tiles=0: shape-independent checks only (catches 0)
                    cfg.validate(0)?;
                    Ok(cfg)
                }
                None => Err(format!(
                    "unknown directory {other:?} (want full-map | sparse | sparse:N)"
                )),
            },
        }
    }

    /// Validate against a machine of `tiles` tiles.
    pub fn validate(&self, tiles: usize) -> Result<(), String> {
        match *self {
            DirectoryConfig::FullMap if tiles > FULL_MAP_MAX_TILES => Err(format!(
                "full-map directory cannot track {tiles} tiles (the sharer \
                 vector is {FULL_MAP_MAX_TILES} bits); configure \
                 `directory: DirectoryConfig::Sparse {{ dir_mshrs }}`"
            )),
            DirectoryConfig::Sparse { dir_mshrs: 0 } => {
                Err("sparse directory needs at least one MSHR: set \
                 `directory: DirectoryConfig::Sparse { dir_mshrs >= 1 }`"
                    .into())
            }
            _ => Ok(()),
        }
    }
}

/// Full description of the simulated CMP (paper Table 4 by default).
#[derive(Clone, Debug, PartialEq)]
pub struct CmpConfig {
    /// Tile grid (4×4 by default).
    pub mesh: MeshShape,
    /// Core and network clock in hertz (4 GHz).
    pub clock_hz: f64,
    /// Process technology in nanometres (65 nm; feeds the wire model).
    pub technology_nm: u32,
    /// Area of one tile in mm² (25 mm²; feeds the compression-hardware
    /// relative-cost numbers of Table 1).
    pub tile_area_mm2: f64,
    /// Per-core maximum dynamic power in watts, used as the Table 1
    /// normalisation baseline and by the Wattch-lite chip power model.
    pub core_max_dyn_power_w: f64,
    /// Per-core static (leakage) power in watts.
    pub core_static_power_w: f64,
    /// Superscalar width of the in-order cores (2-way).
    pub core_issue_width: u32,
    /// L1 data/instruction cache parameters (32 KB, 4-way).
    pub l1: CacheConfig,
    /// One L2 NUCA slice (256 KB, 4-way, 6+2 cycles).
    pub l2_slice: CacheConfig,
    /// Round-trip latency of an off-chip memory access in cycles (400).
    pub mem_latency_cycles: u64,
    /// L1 MSHR entries (outstanding misses per core).
    pub l1_mshrs: usize,
    /// Sharer-bookkeeping organisation of the home L2 directories.
    pub directory: DirectoryConfig,
    /// Physical network parameters.
    pub network: NetworkConfig,
}

impl Default for CmpConfig {
    fn default() -> Self {
        let line = crate::types::LINE_BYTES;
        CmpConfig {
            mesh: MeshShape::square(4),
            clock_hz: 4.0e9,
            technology_nm: 65,
            tile_area_mm2: 25.0,
            // 25 mm^2 tile at 65 nm: the paper's Table 1 normalises a
            // 64-entry DBRC (0.7078 W) to 3.16% of a core => ~22.4 W of
            // max dynamic power per core.
            core_max_dyn_power_w: 22.4,
            // Table 1 normalises 133.42 mW static to 3.76% => ~3.55 W.
            core_static_power_w: 3.55,
            core_issue_width: 2,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: line,
                tag_latency: 1,
                data_latency: 1,
            },
            l2_slice: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 4,
                line_bytes: line,
                tag_latency: 6,
                data_latency: 2,
            },
            mem_latency_cycles: 400,
            l1_mshrs: 8,
            directory: DirectoryConfig::FullMap,
            network: NetworkConfig {
                link_bytes: 75,
                link_length_mm: 5.0,
                router_pipeline_cycles: 3,
                virtual_channels: 4,
                vc_buffer_flits: 4,
            },
        }
    }
}

impl CmpConfig {
    /// Number of tiles (= cores = L2 slices).
    pub fn tiles(&self) -> usize {
        self.mesh.tiles()
    }

    /// Duration of one clock cycle in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Home tile of a block address: line-interleaved across tiles using
    /// the bits right above the block offset, the standard NUCA placement
    /// for tiled CMPs.
    pub fn home_tile(&self, addr: crate::types::Addr) -> crate::types::TileId {
        let line_shift = self.l1.line_bytes.trailing_zeros();
        let idx = (addr >> line_shift) as usize % self.tiles();
        crate::types::TileId::from(idx)
    }

    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_hz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.l1.line_bytes != self.l2_slice.line_bytes {
            return Err("L1 and L2 must share a line size".into());
        }
        if self.l1_mshrs == 0 {
            return Err("need at least one MSHR".into());
        }
        self.directory
            .validate(self.tiles())
            .map_err(|e| format!("directory: {e}"))?;
        self.l1.validate().map_err(|e| format!("L1: {e}"))?;
        self.l2_slice.validate().map_err(|e| format!("L2: {e}"))?;
        self.network
            .validate()
            .map_err(|e| format!("network: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TileId;

    #[test]
    fn default_matches_table_4() {
        let c = CmpConfig::default();
        assert_eq!(c.tiles(), 16);
        assert_eq!(c.clock_hz, 4.0e9);
        assert_eq!(c.technology_nm, 65);
        assert_eq!(c.tile_area_mm2, 25.0);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.sets(), 128);
        assert_eq!(c.l2_slice.size_bytes, 256 * 1024);
        assert_eq!(c.l2_slice.hit_latency(), 8); // 6+2 cycles
        assert_eq!(c.mem_latency_cycles, 400);
        assert_eq!(c.network.link_bytes, 75);
        assert_eq!(c.network.link_length_mm, 5.0);
        c.validate().expect("default config is valid");
    }

    #[test]
    fn home_tile_interleaves_by_line() {
        let c = CmpConfig::default();
        // consecutive lines map to consecutive tiles
        assert_eq!(c.home_tile(0x0000), TileId(0));
        assert_eq!(c.home_tile(0x0040), TileId(1));
        assert_eq!(c.home_tile(0x03C0), TileId(15));
        assert_eq!(c.home_tile(0x0400), TileId(0));
        // all bytes of a line share a home
        assert_eq!(c.home_tile(0x0043), c.home_tile(0x0040));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = CmpConfig::default();
        c.l1.ways = 0;
        assert!(c.validate().is_err());

        let mut c = CmpConfig::default();
        c.l1.line_bytes = 48; // not a power of two
        assert!(c.validate().is_err());

        let mut c = CmpConfig::default();
        c.network.link_bytes = 0;
        assert!(c.validate().is_err());

        let mut c = CmpConfig::default();
        c.l2_slice.line_bytes = 128; // mismatched line sizes
        assert!(c.validate().is_err());
    }

    #[test]
    fn full_map_directory_refuses_wide_meshes() {
        let mut c = CmpConfig {
            mesh: MeshShape::square(16),
            ..CmpConfig::default()
        };
        let err = c.validate().expect_err("256 tiles exceed a 64-bit map");
        assert!(err.contains("full-map"), "{err}");
        assert!(err.contains("Sparse"), "{err}");
        c.directory = DirectoryConfig::sparse();
        c.validate().expect("sparse directory scales past 64 tiles");
    }

    #[test]
    fn sparse_directory_needs_mshrs() {
        let c = CmpConfig {
            directory: DirectoryConfig::Sparse { dir_mshrs: 0 },
            ..CmpConfig::default()
        };
        let err = c.validate().expect_err("zero directory MSHRs");
        assert!(err.contains("dir_mshrs"), "{err}");
        assert_eq!(DirectoryConfig::sparse().label(), "sparse(64)");
        assert_eq!(DirectoryConfig::FullMap.label(), "full-map");
    }

    #[test]
    fn directory_flag_spelling_round_trips() {
        for d in [
            DirectoryConfig::FullMap,
            DirectoryConfig::sparse(),
            DirectoryConfig::Sparse { dir_mshrs: 128 },
        ] {
            assert_eq!(DirectoryConfig::parse_flag(&d.flag_label()), Ok(d));
        }
        assert_eq!(
            DirectoryConfig::parse_flag("sparse"),
            Ok(DirectoryConfig::sparse())
        );
        let err = DirectoryConfig::parse_flag("sparse:0").expect_err("zero MSHRs");
        assert!(err.contains("dir_mshrs"), "{err}");
        let err = DirectoryConfig::parse_flag("sparse:lots").expect_err("non-numeric");
        assert!(err.contains("sparse:N"), "{err}");
        let err = DirectoryConfig::parse_flag("hierarchical").expect_err("unknown");
        assert!(err.contains("full-map | sparse"), "{err}");
    }

    #[test]
    fn network_bandwidth_matches_table_4() {
        // Table 4: 75 GB/s per link = 75 bytes/cycle... at 4GHz that is
        // 300 GB/s raw; the paper quotes 75 GB/s for a 1 GHz network or
        // per-direction aggregate — we check the physical width here.
        let c = CmpConfig::default();
        assert_eq!(c.network.link_bytes, 75);
    }
}
