//! Streaming FNV-1a 64-bit hashing.
//!
//! One hash, used everywhere a content fingerprint is needed: the
//! campaign journal's configuration stamp ([`crate::journal::fingerprint`])
//! and the checkpoint cache's load-time verification digest. FNV-1a is
//! not cryptographic — it guards against torn or bit-rotted state and
//! against accidentally mixing incompatible configurations, not against
//! an adversary — but it is dependency-free, deterministic across
//! platforms and fast enough to digest a whole machine snapshot.

/// Incremental FNV-1a 64-bit hasher.
///
/// Feed it bytes, integers or strings in a fixed, documented order;
/// [`Fnv64::finish`] yields the digest. The same inputs in the same
/// order always produce the same digest, on every platform.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(OFFSET)
    }

    /// Absorb raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Absorb a `u64` as its 8 little-endian bytes (fixed width, so
    /// adjacent values cannot alias across field boundaries).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a string: its length (as a `u64`) then its bytes, so
    /// `"ab" + "c"` and `"a" + "bc"` digest differently.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 over a byte string (the classic formulation, with
/// no length prefix — [`crate::journal::fingerprint`] is defined in
/// terms of this).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write_bytes(b"foo");
        h.write_bytes(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u64_fixed_width_separates_fields() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102);
        a.write_u64(0x03);
        let mut b = Fnv64::new();
        b.write_u64(0x01);
        b.write_u64(0x0203);
        assert_ne!(a.finish(), b.finish());
    }
}
