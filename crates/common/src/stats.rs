//! Lightweight statistics primitives shared by every subsystem.
//!
//! Simulators live and die by their counters: these types are cheap to
//! update in the hot loop (a few integer ops) and know how to summarise
//! themselves for the experiment reports.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0.0 when `total` is zero).
    pub fn fraction_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean / variance / min / max (Welford's algorithm).
#[derive(Clone, Copy, Default, Debug)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A power-of-two bucketed histogram for latency-like quantities.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))`, except bucket 0
/// which also holds zero. 32 buckets cover any plausible cycle count.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 32],
    stats: OnlineStats,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 32],
            stats: OnlineStats::new(),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()).min(31) as usize;
        self.buckets[bucket] += 1;
        self.stats.push(value as f64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean observation.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.stats.max().unwrap_or(0.0) as u64
    }

    /// Approximate p-quantile from the bucket boundaries (upper bound of
    /// the bucket containing the quantile). Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.stats.merge(&other.stats);
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs for reporting.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// A ratio reported as `hits / (hits + misses)` — the shape of every
/// coverage and hit-rate number in the paper.
#[derive(Clone, Copy, Default, Debug)]
pub struct HitRate {
    pub hits: u64,
    pub misses: u64,
}

impl HitRate {
    /// Record a hit or a miss.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0.0 when no accesses).
    pub fn rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &HitRate) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

crate::impl_persist!(HitRate { hits, misses });

impl crate::persist::Persist for Counter {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        Ok(Counter(r.u64()?))
    }
}

impl crate::persist::Persist for OnlineStats {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        Ok(OnlineStats {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

impl crate::persist::Persist for Histogram {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        self.buckets.save(w);
        self.stats.save(w);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        Ok(Histogram {
            buckets: crate::persist::Persist::load(r)?,
            stats: crate::persist::Persist::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.fraction_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..40].iter().for_each(|&x| left.push(x));
        xs[40..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 8, 16, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.5) <= 8);
        assert!(h.quantile(1.0) >= 1000 / 2);
        let buckets = h.nonzero_buckets();
        assert!(!buckets.is_empty());
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 8);
    }

    #[test]
    fn hit_rate() {
        let mut r = HitRate::default();
        for i in 0..10 {
            r.record(i % 4 != 0);
        }
        assert_eq!(r.total(), 10);
        assert!((r.rate() - 0.7).abs() < 1e-12);
    }
}
