//! Core scalar types and the coherence-message taxonomy.
//!
//! The message classification mirrors Figure 4 of the paper: requests,
//! responses (with and without data), coherence commands, coherence replies
//! and replacements (with and without data). Each class carries a fixed
//! on-wire size (Section 4.3): 3 bytes of control information, plus 8 bytes
//! of address for address-bearing messages, plus 64 bytes for a cache line
//! when data travels with the message.

use std::fmt;

/// A physical (block-aligned or byte) memory address.
pub type Addr = u64;

/// A simulation time stamp in core clock cycles (4 GHz by default).
pub type Cycle = u64;

/// Cache-line size in bytes (Table 4).
pub const LINE_BYTES: usize = 64;

/// Control-information bytes carried by every coherence message
/// (source/destination, message type, MSHR id, ...).
pub const CONTROL_BYTES: usize = 3;

/// Address bytes carried by address-bearing messages (64-bit addresses).
pub const ADDRESS_BYTES: usize = 8;

/// Identifier of a tile (core + L1 + L2 slice + router) in the CMP.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileId(pub u16);

impl TileId {
    /// The tile index as a plain `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

impl From<usize> for TileId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "tile index {v} out of range");
        TileId(v as u16)
    }
}

/// Classification of every message that travels on the interconnect
/// (paper Figure 4), with the criticality and size rules of Sections
/// 4.2–4.3 attached.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MessageClass {
    /// L1 miss request sent to the home L2 slice (GetS/GetX/Upgrade).
    /// Critical, short, carries an address. 11 bytes uncompressed.
    Request,
    /// Response carrying a full cache line (home L2 or remote owner to the
    /// requestor). Critical but long: 67 bytes.
    ResponseData,
    /// Response without data (e.g. upgrade acknowledgements). Critical,
    /// short, carries an address: 11 bytes.
    ResponseNoData,
    /// Coherence command from the home L2 to an L1 (invalidation,
    /// intervention/forward). Critical, short, carries an address: 11 bytes.
    CoherenceCmd,
    /// Coherence reply from an L1 back to the home L2 (invalidation ack,
    /// downgrade ack). Critical, short, control-only: 3 bytes.
    CoherenceReply,
    /// Revision message — the non-critical half of a cache-to-cache
    /// transfer (3b in the paper's example): the owner informs/updates the
    /// home node while the requestor is already served. 67 bytes when the
    /// line travels with it.
    Revision,
    /// Replacement of a modified line: writeback with data, non-critical,
    /// 67 bytes.
    ReplacementData,
    /// Replacement hint for a clean-exclusive line: non-critical, short,
    /// carries an address: 11 bytes.
    ReplacementNoData,
    /// *Reply Partitioning* (Flores et al., HiPC 2007 — the companion
    /// technique this paper builds on): the critical half of a split data
    /// response, carrying only the word the processor asked for. Short
    /// (3 bytes control + 8 bytes word), critical, rides the low-latency
    /// wires; the matching full-line `ResponseData` follows as a
    /// non-critical *ordinary reply*.
    PartialReply,
}

impl MessageClass {
    /// All message classes, for iteration in reports.
    pub const ALL: [MessageClass; 9] = [
        MessageClass::Request,
        MessageClass::ResponseData,
        MessageClass::ResponseNoData,
        MessageClass::CoherenceCmd,
        MessageClass::CoherenceReply,
        MessageClass::Revision,
        MessageClass::ReplacementData,
        MessageClass::ReplacementNoData,
        MessageClass::PartialReply,
    ];

    /// Whether the message sits on the critical path of an L1 miss
    /// (Section 4.2). Replacements and revision-style coherence replies are
    /// the non-critical ones.
    #[inline]
    pub fn is_critical(self) -> bool {
        !matches!(
            self,
            MessageClass::Revision
                | MessageClass::ReplacementData
                | MessageClass::ReplacementNoData
        )
    }

    /// Whether the message body includes a block address that an address
    /// compression scheme could shrink.
    #[inline]
    pub fn carries_address(self) -> bool {
        matches!(
            self,
            MessageClass::Request
                | MessageClass::ResponseNoData
                | MessageClass::CoherenceCmd
                | MessageClass::ReplacementNoData
        )
    }

    /// Whether a full cache line travels with the message.
    #[inline]
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MessageClass::ResponseData | MessageClass::Revision | MessageClass::ReplacementData
        )
    }

    /// Uncompressed on-wire size in bytes (Section 4.3): 3 bytes control,
    /// +8 bytes for an address, +64 bytes for a line. A partial reply
    /// carries control plus one 8-byte word.
    #[inline]
    pub fn uncompressed_bytes(self) -> usize {
        if self == MessageClass::PartialReply {
            return CONTROL_BYTES + 8;
        }
        let mut size = CONTROL_BYTES;
        if self.carries_address() {
            size += ADDRESS_BYTES;
        }
        if self.carries_data() {
            size += LINE_BYTES;
        }
        size
    }

    /// Short messages are everything that does not carry a cache line
    /// (Section 4.2's size classification).
    #[inline]
    pub fn is_short(self) -> bool {
        !self.carries_data()
    }

    /// The compression stream this message belongs to. The paper keeps
    /// *requests* and *coherence commands* on separate sender/receiver
    /// structures "to avoid destructive interferences between both address
    /// streams" (Section 3.1). Messages that are never compressed return
    /// `None`.
    #[inline]
    pub fn compression_stream(self) -> Option<CompressionStream> {
        match self {
            MessageClass::Request => Some(CompressionStream::Requests),
            MessageClass::CoherenceCmd => Some(CompressionStream::Commands),
            _ => None,
        }
    }

    /// Human-readable label used in reports (matches the paper's Figure 5
    /// legend granularity).
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Request => "request",
            MessageClass::ResponseData => "response+data",
            MessageClass::ResponseNoData => "response",
            MessageClass::CoherenceCmd => "coherence-cmd",
            MessageClass::CoherenceReply => "coherence-reply",
            MessageClass::Revision => "revision",
            MessageClass::ReplacementData => "replacement+data",
            MessageClass::ReplacementNoData => "replacement",
            MessageClass::PartialReply => "partial-reply",
        }
    }
}

/// The two independent address streams that get their own compression
/// hardware at each tile (Section 3.1: "requests and coherence commands use
/// their own hardware structures").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompressionStream {
    /// Addresses flowing L1 → home L2 (requests) and home L2 → L1 responses
    /// without data.
    Requests,
    /// Addresses flowing home L2 → L1 (invalidations, interventions).
    Commands,
}

impl CompressionStream {
    /// Both streams, for iteration.
    pub const ALL: [CompressionStream; 2] =
        [CompressionStream::Requests, CompressionStream::Commands];

    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CompressionStream::Requests => 0,
            CompressionStream::Commands => 1,
        }
    }
}

impl crate::persist::Persist for TileId {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        w.u16(self.0);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        Ok(TileId(r.u16()?))
    }
}

impl crate::persist::Persist for MessageClass {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        let tag = MessageClass::ALL
            .iter()
            .position(|c| c == self)
            .unwrap_or(0) as u8;
        w.u8(tag);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        let tag = r.u8()? as usize;
        MessageClass::ALL
            .get(tag)
            .copied()
            .ok_or_else(|| r.err("invalid MessageClass tag"))
    }
}

impl crate::persist::Persist for CompressionStream {
    fn save(&self, w: &mut crate::persist::ByteWriter) {
        w.u8(self.index() as u8);
    }
    fn load(r: &mut crate::persist::ByteReader) -> Result<Self, crate::persist::PersistError> {
        let tag = r.u8()? as usize;
        CompressionStream::ALL
            .get(tag)
            .copied()
            .ok_or_else(|| r.err("invalid CompressionStream tag"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_match_paper_section_4_3() {
        // "Requests, coherence commands are 11-byte long"
        assert_eq!(MessageClass::Request.uncompressed_bytes(), 11);
        assert_eq!(MessageClass::CoherenceCmd.uncompressed_bytes(), 11);
        assert_eq!(MessageClass::ResponseNoData.uncompressed_bytes(), 11);
        // "coherence replies and replacements without data are just 3-byte"
        assert_eq!(MessageClass::CoherenceReply.uncompressed_bytes(), 3);
        assert_eq!(MessageClass::ReplacementNoData.uncompressed_bytes(), 11);
        // "ordinary reply messages are 67-byte long"
        assert_eq!(MessageClass::ResponseData.uncompressed_bytes(), 67);
        assert_eq!(MessageClass::ReplacementData.uncompressed_bytes(), 67);
        assert_eq!(MessageClass::Revision.uncompressed_bytes(), 67);
    }

    #[test]
    fn criticality_matches_paper_section_4_2() {
        // "all message types but replacement messages and some coherence
        // replies (such as revision messages) are critical"
        assert!(MessageClass::Request.is_critical());
        assert!(MessageClass::ResponseData.is_critical());
        assert!(MessageClass::ResponseNoData.is_critical());
        assert!(MessageClass::CoherenceCmd.is_critical());
        assert!(MessageClass::CoherenceReply.is_critical());
        assert!(!MessageClass::Revision.is_critical());
        assert!(!MessageClass::ReplacementData.is_critical());
        assert!(!MessageClass::ReplacementNoData.is_critical());
    }

    #[test]
    fn short_long_split() {
        for class in MessageClass::ALL {
            assert_eq!(class.is_short(), !class.carries_data());
            assert_eq!(class.is_short(), class.uncompressed_bytes() <= 11);
        }
    }

    #[test]
    fn compression_streams_are_disjoint_hardware() {
        assert_eq!(
            MessageClass::Request.compression_stream(),
            Some(CompressionStream::Requests)
        );
        assert_eq!(
            MessageClass::CoherenceCmd.compression_stream(),
            Some(CompressionStream::Commands)
        );
        // Data-bearing and control-only messages are never compressed, and
        // neither are responses without data (the paper compresses only
        // requests and coherence commands, Section 4.3).
        assert_eq!(MessageClass::ResponseNoData.compression_stream(), None);
        assert_eq!(MessageClass::ResponseData.compression_stream(), None);
        assert_eq!(MessageClass::CoherenceReply.compression_stream(), None);
        assert_eq!(MessageClass::ReplacementData.compression_stream(), None);
    }

    #[test]
    fn partial_reply_is_short_critical_word_sized() {
        let p = MessageClass::PartialReply;
        assert_eq!(p.uncompressed_bytes(), 11); // 3B control + 8B word
        assert!(p.is_critical());
        assert!(p.is_short());
        assert!(!p.carries_address(), "a word, not a compressible address");
        assert!(!p.carries_data(), "not a full line");
        assert_eq!(p.compression_stream(), None);
    }

    #[test]
    fn tile_id_roundtrip() {
        let t: TileId = 13usize.into();
        assert_eq!(t.index(), 13);
        assert_eq!(format!("{t:?}"), "T13");
        assert_eq!(format!("{t}"), "tile13");
    }
}
