//! An inline-first vector for hot-path message plumbing.
//!
//! Protocol handlers emit a handful of side effects per event (almost
//! always ≤ 4); returning a heap `Vec` from every handler call made
//! allocation the dominant cost of the simulator's inner loop. A
//! [`SmallVec`] stores up to `N` elements inline on the stack and only
//! touches the heap on the rare overflow (e.g. an invalidation burst to
//! many sharers).
//!
//! Restricted to `T: Copy` — that covers every message type in the
//! simulator and keeps the implementation free of drop bookkeeping.

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector of `Copy` elements with inline storage for the first `N`.
pub struct SmallVec<T: Copy, const N: usize> {
    /// Number of initialized inline elements (0 once spilled).
    inline_len: usize,
    inline: [MaybeUninit<T>; N],
    /// Heap storage; once non-empty it holds *all* elements.
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> SmallVec<T, N> {
    /// An empty vector (no allocation).
    #[inline]
    pub fn new() -> Self {
        SmallVec {
            inline_len: 0,
            inline: [MaybeUninit::uninit(); N],
            spill: Vec::new(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.inline_len
        } else {
            self.spill.len()
        }
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements have overflowed to the heap.
    #[inline]
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Append an element.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.spill.is_empty() {
            if self.inline_len < N {
                self.inline[self.inline_len].write(value);
                self.inline_len += 1;
                return;
            }
            // overflow: promote the inline elements to the heap
            let mut spill = std::mem::take(&mut self.spill);
            spill.reserve(N + 1);
            spill.extend_from_slice(self.as_inline_slice());
            self.spill = spill;
            self.inline_len = 0;
        }
        self.spill.push(value);
    }

    /// Remove all elements, keeping any heap capacity for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            self.as_inline_slice()
        } else {
            &self.spill
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            // SAFETY: the first `inline_len` elements are initialized.
            unsafe {
                std::slice::from_raw_parts_mut(self.inline.as_mut_ptr() as *mut T, self.inline_len)
            }
        } else {
            &mut self.spill
        }
    }

    #[inline]
    fn as_inline_slice(&self) -> &[T] {
        // SAFETY: the first `inline_len` elements are initialized.
        unsafe { std::slice::from_raw_parts(self.inline.as_ptr() as *const T, self.inline_len) }
    }
}

impl<T: Copy, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy, const N: usize> DerefMut for SmallVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        let mut v = SmallVec::new();
        for &x in self.as_slice() {
            v.push(x);
        }
        v
    }
}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl<T: Copy, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

/// By-value iterator over a [`SmallVec`].
pub struct IntoIter<T: Copy, const N: usize> {
    vec: SmallVec<T, N>,
    pos: usize,
}

impl<T: Copy, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    #[inline]
    fn next(&mut self) -> Option<T> {
        let item = self.vec.as_slice().get(self.pos).copied();
        self.pos += 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.vec.len().saturating_sub(self.pos);
        (n, Some(n))
    }
}

impl<T: Copy, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { vec: self, pos: 0 }
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..50 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 50);
        assert_eq!(v[0], 0);
        assert_eq!(v[49], 49);
        let collected: Vec<u32> = v.into_iter().collect();
        assert_eq!(collected, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut v: SmallVec<u8, 2> = SmallVec::new();
        v.extend([1, 2, 3]);
        assert!(v.spilled());
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn slice_ops_work_through_deref() {
        let v: SmallVec<u32, 4> = [5, 6].into_iter().collect();
        assert!(matches!(v[..], [5, 6]));
        assert_eq!(v.iter().sum::<u32>(), 11);
        let mut m = v.clone();
        m[0] = 7;
        assert_eq!(m.as_slice(), &[7, 6]);
        assert_eq!(v, v.clone());
    }

    #[test]
    fn empty_default_and_debug() {
        let v: SmallVec<u32, 2> = SmallVec::default();
        assert!(v.is_empty());
        assert_eq!(format!("{v:?}"), "[]");
    }
}
