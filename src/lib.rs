//! # tiled-cmp
//!
//! A tiled chip-multiprocessor simulator reproducing *"Address Compression
//! and Heterogeneous Interconnects for Energy-Efficient High-Performance
//! in Tiled CMPs"* (Flores, Acacio & Aragón, ICPP 2008).
//!
//! The paper's proposal: dynamically compress the addresses inside
//! coherence messages (requests and coherence commands shrink from 11 to
//! 4–5 bytes), and spend the freed link area on a few **very-low-latency
//! VL-Wires** that carry the short critical messages, area-neutrally
//! (each 75-byte B-Wire link becomes 34 bytes of B-Wires + 3–5 bytes of
//! VL-Wires).
//!
//! This façade crate re-exports the full stack:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`common`] | `cmp-common` | types, config, geometry, stats, RNG |
//! | [`wires`] | `wire-model` | RC delay, repeaters, Tables 2–3 wire classes |
//! | [`compression`] | `addr-compression` | DBRC, Stride, CACTI-lite (Table 1) |
//! | [`noc`] | `mesh-noc` | flit-level heterogeneous 2D-mesh NoC |
//! | [`coherence`] | `coherence` | MESI directory protocol, L1/L2, memory |
//! | [`cpu`] | `cpu-model` | trace-driven in-order cores |
//! | [`workloads`] | `workloads` | the 13 synthetic application profiles |
//! | [`energy`] | `energy-model` | Wattch-lite + interconnect energy, ED²P |
//! | [`sim`] | `tcmp-core` | the full-system simulator + experiments |
//!
//! ## Quickstart
//!
//! ```
//! use tiled_cmp::prelude::*;
//!
//! // the paper's baseline: 16 tiles, 75-byte B-Wire links, no compression
//! let baseline = SimConfig::baseline();
//! // the proposal: 34B B-Wires + 5B VL-Wires, 4-entry DBRC, 2 low bytes
//! let proposal = SimConfig::new(
//!     InterconnectChoice::Heterogeneous(VlWidth::FiveBytes),
//!     CompressionScheme::Dbrc { entries: 4, low_bytes: 2 },
//! );
//!
//! let app = tiled_cmp::workloads::apps::mp3d();
//! let run = |cfg| CmpSimulator::new(cfg, &app, 42, 0.002).run().unwrap();
//! let (base, prop) = (run(baseline), run(proposal));
//! assert!(prop.cycles <= base.cycles);
//! ```

pub use addr_compression as compression;
pub use cmp_common as common;
pub use coherence;
pub use cpu_model as cpu;
pub use energy_model as energy;
pub use mesh_noc as noc;
pub use tcmp_core as sim;
pub use wire_model as wires;
pub use workloads;

/// The names most programs need.
pub mod prelude {
    pub use addr_compression::CompressionScheme;
    pub use cmp_common::config::CmpConfig;
    pub use cmp_common::journal::{CampaignMeta, Journal, Json};
    pub use cmp_common::types::{MessageClass, TileId};
    pub use tcmp_core::checkpoint::{CacheLoad, CacheStats, CheckpointCache, WarmKey};
    pub use tcmp_core::engine::MachineSnapshot;
    pub use tcmp_core::experiment::{
        normalize, normalize_partial, paper_configs, run_matrix, run_matrix_jobs, ConfigSpec,
        MatrixError, PartialNormalization, RunFailure, RunSpec,
    };
    pub use tcmp_core::niface::InterconnectChoice;
    pub use tcmp_core::sim::{CmpSimulator, SimConfig, SimError, SimResult, WatchdogConfig};
    pub use tcmp_core::supervisor::{
        campaign_meta, cell_key, run_journaled_cell, run_matrix_supervised, run_supervised,
        run_supervised_cached, supervise, warm_key, CellFailure, CellRun, ForensicReport,
        MatrixReport, RunPolicy, SupervisedFailure, WarmStart,
    };
    pub use wire_model::wires::{VlWidth, WireClass};
    pub use workloads::profile::AppProfile;
}
