#!/usr/bin/env bash
# Repo gate: everything a PR must pass, in the order a developer wants
# failures reported. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test (TCMP_SANITIZE=1: protocol sanitizer armed)"
TCMP_SANITIZE=1 cargo test -q --workspace

echo "== snapshot/restore round-trip smoke"
cargo test -q --release --test snapshot_restore

echo "== fault-campaign smoke run"
cargo run -q --release -p cmp-bench --bin fault_campaign -- --smoke --seed 1025041 --jobs 2

echo "All checks passed."
