#!/usr/bin/env bash
# Repo gate: everything a PR must pass, in the order a developer wants
# failures reported. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test (TCMP_SANITIZE=1: protocol sanitizer armed)"
TCMP_SANITIZE=1 cargo test -q --workspace

echo "== snapshot/restore round-trip smoke"
cargo test -q --release --test snapshot_restore

echo "== determinism goldens under the epoch scheduler (2 and 4 threads)"
TCMP_SIM_THREADS=2 cargo test -q --release --test determinism_golden
TCMP_SIM_THREADS=4 cargo test -q --release --test determinism_golden

echo "== goldens under the sparse directory + multicast codec (non-golden paths sanitizer-clean)"
cargo test -q --release --test determinism_golden \
    goldens_replay_bit_identically_under_the_sparse_directory
cargo test -q --release --test determinism_golden \
    multicast_codec_is_deterministic_and_sanitizer_clean
cargo test -q --release --test directory_equivalence

echo "== 16x16 sparse-directory smoke (proposal vs baseline, wall deadline)"
timeout 300 target/release/sensitivity_mesh \
    --app FFT --side 16 --directory sparse --scale 0.002 --seed 1025041 >/dev/null || {
    echo "16x16 sparse smoke: failed or blew the 300 s wall deadline"; exit 1; }
echo "16x16 sparse smoke: completed under the deadline"

echo "== perf-floor smoke (fullsim_hotspot must clear a coarse throughput floor)"
# Catches order-of-magnitude scheduler regressions, not percent-level
# drift: the floor sits far below any healthy machine's throughput
# (this repo's 1-core reference box does ~1.2M cycles/s). On 1-core
# containers timing shares the core with everything else, so a miss
# only warns there; multi-core machines fail hard.
PERF_FLOOR=400000
PERF_JSON="$(mktemp "${TMPDIR:-/tmp}/tcmp-perfsmoke-XXXXXX.json")"
target/release/fullsim_bench --trials 3 --warmup 1 \
    --skip-matrix --skip-scaling --skip-mesh --out "$PERF_JSON" >/dev/null
PERF_MEDIAN=$(python3 - "$PERF_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
row = next(b for b in doc["benchmarks"] if b["name"] == "fullsim_hotspot")
print(int(row["median"]))
EOF
)
rm -f "$PERF_JSON"
if [ "$PERF_MEDIAN" -lt "$PERF_FLOOR" ]; then
    if [ "$(nproc)" -le 1 ]; then
        echo "perf-floor smoke: WARNING — hotspot median $PERF_MEDIAN cycles/s" \
             "under floor $PERF_FLOOR, tolerated on a 1-core container"
    else
        echo "perf-floor smoke: hotspot median $PERF_MEDIAN cycles/s under floor $PERF_FLOOR"
        exit 1
    fi
else
    echo "perf-floor smoke: hotspot median $PERF_MEDIAN cycles/s clears floor $PERF_FLOOR"
fi

echo "== cross-thread determinism + epoch scheduler unit tests"
cargo test -q --release --test thread_determinism
RUST_TEST_THREADS=1 cargo test -q --release -p tcmp-core engine::epoch

echo "== forward-progress watchdog unit + livelock tests"
cargo test -q --release -p tcmp-core engine::watchdog
cargo test -q --release --test robustness watchdog

echo "== campaign journal + resume tests"
cargo test -q --release -p cmp-common journal
cargo test -q --release --test campaign_resume

echo "== fault-campaign smoke run (protocol + filesystem fault sweeps)"
cargo run -q --release -p cmp-bench --bin fault_campaign -- \
    --smoke --fs-faults --seed 1025041 --jobs 2

echo "== kill-and-resume smoke (SIGKILL mid-sweep, resume, diff CSVs)"
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/tcmp-killsmoke-XXXXXX")"
trap 'rm -rf "$SMOKE_DIR"' EXIT
FIG6="target/release/fig6_exec_time_ed2p"
FIG6_ARGS=(--scale 0.002 --app FFT --app MP3D --no-perfect --seed 1025041 --jobs 2)
# reference: one uninterrupted journaled sweep
"$FIG6" "${FIG6_ARGS[@]}" --out "$SMOKE_DIR/ref" --csv "$SMOKE_DIR/ref.csv" >/dev/null 2>&1
# victim: start the same sweep, SIGKILL it mid-flight, then resume
"$FIG6" "${FIG6_ARGS[@]}" --out "$SMOKE_DIR/victim" >/dev/null 2>&1 &
VICTIM_PID=$!
# wait for the journal to hold at least one finished cell, then kill -9
for _ in $(seq 1 200); do
    if grep -q '"finish"' "$SMOKE_DIR/victim/journal.jsonl" 2>/dev/null; then break; fi
    sleep 0.05
done
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
test -s "$SMOKE_DIR/victim/journal.jsonl" || {
    echo "kill-and-resume smoke: victim never journaled a cell"; exit 1; }
"$FIG6" "${FIG6_ARGS[@]}" --resume "$SMOKE_DIR/victim" --csv "$SMOKE_DIR/resumed.csv" \
    >/dev/null 2>&1
# the resumed sweep must reproduce the reference CSVs byte-for-byte
# (modulo the provenance stamp line, which embeds the git SHA)
for suffix in exec_time.csv link_ed2p.csv; do
    diff <(grep -v '^#' "$SMOKE_DIR/ref.csv.$suffix") \
         <(grep -v '^#' "$SMOKE_DIR/resumed.csv.$suffix") || {
        echo "kill-and-resume smoke: resumed $suffix differs from reference"; exit 1; }
done
echo "kill-and-resume smoke: resumed CSVs are bit-identical"

echo "== tcmp-serve smoke (submit over the socket, SIGKILL the daemon, restart, diff CSVs)"
SERVE="target/release/tcmp-serve"
SUBMIT_ARGS=(--scale 0.002 --app FFT --no-perfect --seed 1025041)
SERVE_REF="$SMOKE_DIR/serve-ref"
SERVE_KILL="$SMOKE_DIR/serve-kill"
SOCK_REF="$SMOKE_DIR/ref.sock"
SOCK_KILL="$SMOKE_DIR/kill.sock"
wait_for() { # wait_for SECONDS TEST...
    local tries=$(( $1 * 20 )); shift
    for _ in $(seq 1 "$tries"); do
        if "$@" 2>/dev/null; then return 0; fi
        sleep 0.05
    done
    return 1
}
# reference: an uninterrupted daemon runs the whole campaign; the
# submitting client exits 0 on campaign_done; SIGTERM drains cleanly
"$SERVE" --root "$SERVE_REF" --socket "$SOCK_REF" --jobs 2 \
    >"$SMOKE_DIR/serve-ref.log" 2>&1 &
REF_PID=$!
wait_for 10 test -S "$SOCK_REF" || {
    echo "tcmp-serve smoke: reference daemon never bound its socket"
    cat "$SMOKE_DIR/serve-ref.log"; exit 1; }
"$FIG6" "${SUBMIT_ARGS[@]}" --submit "$SOCK_REF" >/dev/null 2>&1 || {
    echo "tcmp-serve smoke: reference campaign failed"
    cat "$SMOKE_DIR/serve-ref.log"; exit 1; }
kill -TERM "$REF_PID"
wait "$REF_PID" || {
    echo "tcmp-serve smoke: reference daemon did not drain cleanly (exit $?)"
    cat "$SMOKE_DIR/serve-ref.log"; exit 1; }
# victim: same campaign; the daemon is SIGKILLed once the journal holds
# a finished cell, the submitter's stream breaks (tolerated), and a
# fresh daemon on the same root — and the same, now-stale, socket —
# resumes the campaign to completion with no client attached at all
"$SERVE" --root "$SERVE_KILL" --socket "$SOCK_KILL" --jobs 2 \
    >"$SMOKE_DIR/serve-kill.log" 2>&1 &
KILL_PID=$!
wait_for 10 test -S "$SOCK_KILL" || {
    echo "tcmp-serve smoke: victim daemon never bound its socket"
    cat "$SMOKE_DIR/serve-kill.log"; exit 1; }
"$FIG6" "${SUBMIT_ARGS[@]}" --submit "$SOCK_KILL" >/dev/null 2>&1 &
CLIENT_PID=$!
wait_for 30 grep -q '"finish"' "$SERVE_KILL/campaigns/c0001/journal.jsonl" || {
    echo "tcmp-serve smoke: victim daemon never journaled a cell"
    cat "$SMOKE_DIR/serve-kill.log"; exit 1; }
kill -9 "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
wait "$CLIENT_PID" 2>/dev/null || true
"$SERVE" --root "$SERVE_KILL" --socket "$SOCK_KILL" --jobs 2 \
    >>"$SMOKE_DIR/serve-kill.log" 2>&1 &
RESUME_PID=$!
wait_for 60 test -f "$SERVE_KILL/campaigns/c0001/results.exec_time.csv" || {
    echo "tcmp-serve smoke: resumed daemon never finalised the campaign"
    cat "$SMOKE_DIR/serve-kill.log"; exit 1; }
kill -TERM "$RESUME_PID"
wait "$RESUME_PID" || {
    echo "tcmp-serve smoke: resumed daemon did not drain cleanly (exit $?)"
    cat "$SMOKE_DIR/serve-kill.log"; exit 1; }
# the resumed daemon's CSVs must match the uninterrupted daemon's
# byte-for-byte (modulo the provenance stamp line with the git SHA)
for f in results.exec_time.csv results.link_ed2p.csv; do
    diff <(grep -v '^#' "$SERVE_REF/campaigns/c0001/$f") \
         <(grep -v '^#' "$SERVE_KILL/campaigns/c0001/$f") || {
        echo "tcmp-serve smoke: resumed $f differs from the uninterrupted daemon's"
        exit 1; }
done
echo "tcmp-serve smoke: SIGKILLed daemon resumed to bit-identical CSVs"

echo "== disk-tier smoke (SIGKILL mid-spill, TCMP_FS_FAULTS-armed restart, warm-start bit-identity)"
SERVE_DISK="$SMOKE_DIR/serve-disk"
SOCK_DISK="$SMOKE_DIR/disk.sock"
DISK_ARGS=(--root "$SERVE_DISK" --socket "$SOCK_DISK" --jobs 2 --warm-cycles 50000)
# lifetime 1: a warm-cycles daemon runs the campaign cold, spilling one
# checkpoint per configuration; SIGKILL it once at least two .ckpt files
# have landed (whatever spill is in flight dies mid-write)
"$SERVE" "${DISK_ARGS[@]}" >"$SMOKE_DIR/serve-disk.log" 2>&1 &
DISK_PID=$!
wait_for 10 test -S "$SOCK_DISK" || {
    echo "disk-tier smoke: daemon never bound its socket"
    cat "$SMOKE_DIR/serve-disk.log"; exit 1; }
"$FIG6" "${SUBMIT_ARGS[@]}" --submit "$SOCK_DISK" >/dev/null 2>&1 &
DISK_CLIENT=$!
wait_for 60 sh -c "test \"\$(ls '$SERVE_DISK/checkpoints/'*.ckpt 2>/dev/null | wc -l)\" -ge 2" || {
    echo "disk-tier smoke: daemon never spilled two checkpoints"
    cat "$SMOKE_DIR/serve-disk.log"; exit 1; }
kill -9 "$DISK_PID" 2>/dev/null || true
wait "$DISK_PID" 2>/dev/null || true
wait "$DISK_CLIENT" 2>/dev/null || true
# lifetime 2: restart on the same root with the read-fault seam armed.
# The startup scan is the first reader, so the two-fault budget lands on
# the first two checkpoint files: both must be quarantined loudly, the
# campaign must still resume, and its CSVs must match the uninterrupted
# reference byte-for-byte.
TCMP_FS_FAULTS="seed=9,short=1,flip=1,max=2" \
    "$SERVE" "${DISK_ARGS[@]}" >>"$SMOKE_DIR/serve-disk.log" 2>&1 &
DISK_PID=$!
wait_for 60 test -f "$SERVE_DISK/campaigns/c0001/results.exec_time.csv" || {
    echo "disk-tier smoke: faulted restart never finalised the campaign"
    cat "$SMOKE_DIR/serve-disk.log"; exit 1; }
kill -TERM "$DISK_PID"
wait "$DISK_PID" || {
    echo "disk-tier smoke: faulted daemon did not drain cleanly (exit $?)"
    cat "$SMOKE_DIR/serve-disk.log"; exit 1; }
grep -q "quarantined checkpoint" "$SMOKE_DIR/serve-disk.log" || {
    echo "disk-tier smoke: injected read faults were not quarantined loudly"
    cat "$SMOKE_DIR/serve-disk.log"; exit 1; }
test "$(ls "$SERVE_DISK/checkpoints/quarantine/" | wc -l)" -eq 2 || {
    echo "disk-tier smoke: expected exactly the two faulted artifacts in quarantine"
    ls "$SERVE_DISK/checkpoints/quarantine/"; exit 1; }
for f in results.exec_time.csv results.link_ed2p.csv; do
    diff <(grep -v '^#' "$SERVE_REF/campaigns/c0001/$f") \
         <(grep -v '^#' "$SERVE_DISK/campaigns/c0001/$f") || {
        echo "disk-tier smoke: faulted-restart $f differs from the reference"
        exit 1; }
done
# lifetime 3: a clean restart re-submits the same sweep; every cell must
# warm-start from the surviving + re-spilled checkpoints and the CSVs
# must still be bit-identical to the cold reference.
"$SERVE" "${DISK_ARGS[@]}" >>"$SMOKE_DIR/serve-disk.log" 2>&1 &
DISK_PID=$!
wait_for 10 test -S "$SOCK_DISK" || {
    echo "disk-tier smoke: warm daemon never bound its socket"
    cat "$SMOKE_DIR/serve-disk.log"; exit 1; }
"$FIG6" "${SUBMIT_ARGS[@]}" --submit "$SOCK_DISK" \
    >/dev/null 2>"$SMOKE_DIR/disk-warm-client.log" || {
    echo "disk-tier smoke: warm campaign failed"
    cat "$SMOKE_DIR/disk-warm-client.log"; exit 1; }
kill -TERM "$DISK_PID"
wait "$DISK_PID" || {
    echo "disk-tier smoke: warm daemon did not drain cleanly (exit $?)"
    cat "$SMOKE_DIR/serve-disk.log"; exit 1; }
WARMED=$(grep -c "warm-start: warmed" "$SMOKE_DIR/disk-warm-client.log" || true)
test "$WARMED" -eq 6 || {
    echo "disk-tier smoke: expected all 6 cells to warm-start from disk, saw $WARMED"
    cat "$SMOKE_DIR/disk-warm-client.log"; exit 1; }
for f in results.exec_time.csv results.link_ed2p.csv; do
    diff <(grep -v '^#' "$SERVE_REF/campaigns/c0001/$f") \
         <(grep -v '^#' "$SERVE_DISK/campaigns/c0002/$f") || {
        echo "disk-tier smoke: disk-warmed $f differs from the cold reference"
        exit 1; }
done
echo "disk-tier smoke: quarantine + resume + warm-start all bit-identical"

echo "All checks passed."
