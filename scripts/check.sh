#!/usr/bin/env bash
# Repo gate: everything a PR must pass, in the order a developer wants
# failures reported. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test (TCMP_SANITIZE=1: protocol sanitizer armed)"
TCMP_SANITIZE=1 cargo test -q --workspace

echo "== snapshot/restore round-trip smoke"
cargo test -q --release --test snapshot_restore

echo "== determinism goldens under the epoch scheduler (2 and 4 threads)"
TCMP_SIM_THREADS=2 cargo test -q --release --test determinism_golden
TCMP_SIM_THREADS=4 cargo test -q --release --test determinism_golden

echo "== cross-thread determinism + epoch scheduler unit tests"
cargo test -q --release --test thread_determinism
RUST_TEST_THREADS=1 cargo test -q --release -p tcmp-core engine::epoch

echo "== forward-progress watchdog unit + livelock tests"
cargo test -q --release -p tcmp-core engine::watchdog
cargo test -q --release --test robustness watchdog

echo "== campaign journal + resume tests"
cargo test -q --release -p cmp-common journal
cargo test -q --release --test campaign_resume

echo "== fault-campaign smoke run"
cargo run -q --release -p cmp-bench --bin fault_campaign -- --smoke --seed 1025041 --jobs 2

echo "== kill-and-resume smoke (SIGKILL mid-sweep, resume, diff CSVs)"
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/tcmp-killsmoke-XXXXXX")"
trap 'rm -rf "$SMOKE_DIR"' EXIT
FIG6="target/release/fig6_exec_time_ed2p"
FIG6_ARGS=(--scale 0.002 --app FFT --app MP3D --no-perfect --seed 1025041 --jobs 2)
# reference: one uninterrupted journaled sweep
"$FIG6" "${FIG6_ARGS[@]}" --out "$SMOKE_DIR/ref" --csv "$SMOKE_DIR/ref.csv" >/dev/null 2>&1
# victim: start the same sweep, SIGKILL it mid-flight, then resume
"$FIG6" "${FIG6_ARGS[@]}" --out "$SMOKE_DIR/victim" >/dev/null 2>&1 &
VICTIM_PID=$!
# wait for the journal to hold at least one finished cell, then kill -9
for _ in $(seq 1 200); do
    if grep -q '"finish"' "$SMOKE_DIR/victim/journal.jsonl" 2>/dev/null; then break; fi
    sleep 0.05
done
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
test -s "$SMOKE_DIR/victim/journal.jsonl" || {
    echo "kill-and-resume smoke: victim never journaled a cell"; exit 1; }
"$FIG6" "${FIG6_ARGS[@]}" --resume "$SMOKE_DIR/victim" --csv "$SMOKE_DIR/resumed.csv" \
    >/dev/null 2>&1
# the resumed sweep must reproduce the reference CSVs byte-for-byte
# (modulo the provenance stamp line, which embeds the git SHA)
for suffix in exec_time.csv link_ed2p.csv; do
    diff <(grep -v '^#' "$SMOKE_DIR/ref.csv.$suffix") \
         <(grep -v '^#' "$SMOKE_DIR/resumed.csv.$suffix") || {
        echo "kill-and-resume smoke: resumed $suffix differs from reference"; exit 1; }
done
echo "kill-and-resume smoke: resumed CSVs are bit-identical"

echo "All checks passed."
